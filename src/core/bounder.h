#ifndef METRICPROX_CORE_BOUNDER_H_
#define METRICPROX_CORE_BOUNDER_H_

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <string_view>

#include "core/types.h"

namespace metricprox {

// Defined in check/certificate.h; the certified verbs below never touch it,
// so core stays independent of the certification subsystem.
struct BoundCertificate;

/// Safety margin for bound-based decisions. Bound intervals are computed
/// with a handful of floating-point additions, so they can stray a few ulps
/// outside the true mathematical interval; deciding a comparison only when
/// the bound clears the threshold by this (relative) margin keeps every
/// decision consistent with the exact distances. Near-ties inside the
/// margin simply fall back to the oracle — exactness is never sacrificed.
inline double BoundDecisionMargin(double scale) {
  return 1e-12 * (1.0 + std::abs(scale));
}

/// Relative width of a bound interval, the quantity the approximate mode's
/// slack decisions certify: (ub - max(lb, 0)) / ub, clamped to [0, 1].
/// Degenerate (exact) intervals report 0 even at value 0; unbounded or
/// otherwise unusable intervals report the maximal gap 1.
inline double SlackRelativeGap(const Interval& b) {
  if (!std::isfinite(b.hi)) return 1.0;
  if (b.lo == b.hi) return 0.0;
  if (b.hi <= 0.0) return 1.0;
  const double lb = std::max(b.lo, 0.0);
  return std::clamp((b.hi - lb) / b.hi, 0.0, 1.0);
}

/// The advertised error model of one weak-oracle answer: the weak estimate
/// `w` plus the multiplicative factor `alpha >= 1` and additive floor
/// `floor >= 0` the weak oracle claims to honor. Lives in core (not
/// src/oracle/) so the certification subsystem can recompute the implied
/// interval without depending on any oracle implementation.
struct WeakModel {
  double w = 0.0;
  double alpha = 1.0;
  double floor = 0.0;
};

/// The certified interval a WeakModel implies. The model promises
/// |w - d*m| <= floor for some factor m in [1/alpha, alpha] applied to the
/// true distance d, so d*m in [w - floor, w + floor] and therefore
/// d in [max(0, w - floor)/alpha, (w + floor)*alpha]. This holds even when
/// the weak answer was clamped up to 0 (clamping only raises w).
inline Interval WeakModelInterval(const WeakModel& m) {
  const double hi = (m.w + m.floor) * m.alpha;
  const double lo = std::max(0.0, m.w - m.floor) / m.alpha;
  return Interval(std::min(lo, hi), hi);
}

/// A bound scheme: the pluggable component that answers "what do the
/// already-resolved distances imply about this unknown distance?".
///
/// Implementations: TriBounder, SplubBounder, AdmBounder, LaesaBounder,
/// TlaesaBounder, DftBounder, NullBounder. A BoundedResolver consults the
/// bounder before every oracle call and notifies it after every resolution
/// (the paper's BOUNDS and UPDATE problems, Problems 1 and 2).
class Bounder {
 public:
  virtual ~Bounder() = default;

  /// Short identifier for reports, e.g. "tri" or "splub".
  virtual std::string_view name() const = 0;

  /// A [lb, ub] interval guaranteed to contain dist(i, j), derived without
  /// any oracle call. The caller guarantees i != j and that (i, j) is not
  /// already resolved (the resolver short-circuits known edges itself).
  ///
  /// Non-const because schemes may maintain internal caches.
  virtual Interval Bounds(ObjectId i, ObjectId j) = 0;

  /// Notification that dist(i, j) = d has been resolved and inserted into
  /// the shared PartialDistanceGraph (the UPDATE problem).
  virtual void OnEdgeResolved(ObjectId i, ObjectId j, double d) = 0;

  /// Batch form of the UPDATE problem: the resolver inserted all of `edges`
  /// into the shared graph in one bulk operation. The default forwards each
  /// edge to OnEdgeResolved; schemes with per-update cost (cache
  /// invalidation, incremental matrices) override this to amortize — e.g.
  /// one invalidation per batch instead of one per edge. Overrides must
  /// leave the scheme in the same state as the per-edge loop would.
  virtual void OnEdgesResolved(std::span<const ResolvedEdge> edges) {
    for (const ResolvedEdge& e : edges) OnEdgeResolved(e.u, e.v, e.weight);
  }

  /// Tries to decide `dist(i, j) < t` without the oracle. Returns nullopt
  /// when the scheme cannot decide. The default derives the answer from
  /// Bounds(); DFT overrides this with an LP feasibility test.
  virtual std::optional<bool> DecideLessThan(ObjectId i, ObjectId j,
                                             double t) {
    const Interval b = Bounds(i, j);
    const double margin = BoundDecisionMargin(t);
    if (b.hi < t - margin) return true;
    if (b.lo >= t + margin) return false;
    return std::nullopt;
  }

  /// Tries to decide `dist(i, j) > t` without the oracle (needed when the
  /// *left* side of a pair comparison is already resolved; note this is not
  /// the negation of DecideLessThan because of possible equality).
  virtual std::optional<bool> DecideGreaterThan(ObjectId i, ObjectId j,
                                                double t) {
    const Interval b = Bounds(i, j);
    const double margin = BoundDecisionMargin(t);
    if (b.lo > t + margin) return true;
    if (b.hi <= t - margin) return false;
    return std::nullopt;
  }

  /// Batch form of the BOUNDS problem: tries to decide
  /// `dist(pairs[k]) < thresholds[k]` for a whole sweep of comparisons at
  /// once, writing nullopt where the scheme cannot decide. The spans all
  /// have equal length; every pair is distinct-id, unresolved and in range
  /// (the resolver pre-filters). The default loops DecideLessThan in order;
  /// schemes whose query cost has a reusable part (a Dijkstra row, a pivot
  /// prefetch) override this to amortize it across the sweep. Overrides
  /// must produce exactly the decisions of the sequential loop, so the
  /// batched and scalar pipelines stay equivalent.
  virtual void DecideBatch(std::span<const IdPair> pairs,
                           std::span<const double> thresholds,
                           std::span<std::optional<bool>> out) {
    for (size_t k = 0; k < pairs.size(); ++k) {
      out[k] = DecideLessThan(pairs[k].i, pairs[k].j, thresholds[k]);
    }
  }

  /// Tries to decide `dist(i, j) < dist(k, l)` without the oracle. The
  /// default compares the two bound intervals (the paper's re-authored IF
  /// statement `LB(i,j) >= UB(k,l)` and its mirror).
  virtual std::optional<bool> DecidePairLess(ObjectId i, ObjectId j,
                                             ObjectId k, ObjectId l) {
    const Interval ij = Bounds(i, j);
    const Interval kl = Bounds(k, l);
    const double margin =
        BoundDecisionMargin(std::min(ij.hi, kl.hi) == kInfDistance
                                ? std::max(ij.lo, kl.lo)
                                : std::min(ij.hi, kl.hi));
    if (ij.hi < kl.lo - margin) return true;
    if (ij.lo >= kl.hi + margin) return false;
    return std::nullopt;
  }

  /// ------------------------------------------------------------------
  /// Certification channel (the audit pipeline; see check/certify.h).
  /// A scheme that can *prove* its bounds re-derives them together with
  /// constructive witnesses — a resolved-edge path for the upper bound, a
  /// wrapped edge for the lower bound — so a Verifier can confirm every
  /// bound-decided comparison using only known distances and arithmetic.
  /// ------------------------------------------------------------------

  /// Fills `cert` with an interval certificate whose witnesses reproduce
  /// Bounds(i, j). Returns false when the scheme has no certification
  /// support (the default); decisions by such a scheme are counted as
  /// `uncertified` by the audit, never as failures.
  virtual bool CertifyBounds(ObjectId /*i*/, ObjectId /*j*/,
                             BoundCertificate* /*cert*/) {
    return false;
  }

  /// Certified decision verbs: identical decisions to the plain verbs (the
  /// audit's output-parity guarantee hinges on this), optionally filling
  /// `cert` when the decision itself carries a proof the interval channel
  /// cannot express. The defaults delegate to the plain verbs and leave
  /// `cert` untouched — interval schemes are instead certified post hoc
  /// through CertifyBounds. DFT overrides these to capture the Farkas
  /// multipliers of the very LP solve that made the decision.
  virtual std::optional<bool> DecideLessThanCertified(
      ObjectId i, ObjectId j, double t, BoundCertificate* /*cert*/) {
    return DecideLessThan(i, j, t);
  }
  virtual std::optional<bool> DecideGreaterThanCertified(
      ObjectId i, ObjectId j, double t, BoundCertificate* /*cert*/) {
    return DecideGreaterThan(i, j, t);
  }
  virtual std::optional<bool> DecidePairLessCertified(
      ObjectId i, ObjectId j, ObjectId k, ObjectId l,
      BoundCertificate* /*cert*/) {
    return DecidePairLess(i, j, k, l);
  }

  /// ------------------------------------------------------------------
  /// Approximate-mode observation channel. When a ResolutionPolicy lets
  /// the resolver settle a comparison by slack (interval gap <= eps, or a
  /// budget-forced fallback), it reports the decision here so the audit
  /// shim can emit a slack certificate. The defaults do nothing; plain
  /// schemes never need to override these. `bounds` is the interval the
  /// decision was taken against (Interval::Exact(d) for a cached side of
  /// a pair comparison).
  /// ------------------------------------------------------------------
  virtual void ObserveSlackLessThan(ObjectId /*i*/, ObjectId /*j*/,
                                    double /*t*/, const Interval& /*bounds*/,
                                    double /*eps*/, bool /*outcome*/) {}
  virtual void ObserveSlackPairLess(ObjectId /*i*/, ObjectId /*j*/,
                                    ObjectId /*k*/, ObjectId /*l*/,
                                    const Interval& /*bij*/,
                                    const Interval& /*bkl*/, double /*eps*/,
                                    bool /*outcome*/) {}

  /// ------------------------------------------------------------------
  /// Dual-oracle observation channel. When a WeakBounder is installed and
  /// the resolver settles a comparison from the weak oracle's certified
  /// interval (intersected with the scheme's bounds), it reports the
  /// decision here together with the advertised error model, so the audit
  /// shim can emit a kWeak certificate the Verifier can recompute. The
  /// defaults do nothing. A GreaterOrEqual proof observed through this
  /// channel arrives as ObserveWeakLessThan with outcome=false (the same
  /// convention the scheme path uses: d >= t iff not d < t is provable).
  /// For pair comparisons a cached side is reported as the degenerate
  /// model {d, 1.0, 0.0}.
  /// ------------------------------------------------------------------
  virtual void ObserveWeakLessThan(ObjectId /*i*/, ObjectId /*j*/,
                                   double /*t*/, const WeakModel& /*model*/,
                                   bool /*outcome*/) {}
  virtual void ObserveWeakGreaterThan(ObjectId /*i*/, ObjectId /*j*/,
                                      double /*t*/,
                                      const WeakModel& /*model*/,
                                      bool /*outcome*/) {}
  virtual void ObserveWeakPairLess(ObjectId /*i*/, ObjectId /*j*/,
                                   ObjectId /*k*/, ObjectId /*l*/,
                                   const WeakModel& /*mij*/,
                                   const WeakModel& /*mkl*/,
                                   bool /*outcome*/) {}
};

/// The no-op scheme backing the "without plug" baselines: every bound is
/// [0, inf), so every comparison falls through to the oracle.
class NullBounder : public Bounder {
 public:
  std::string_view name() const override { return "none"; }
  Interval Bounds(ObjectId, ObjectId) override {
    return Interval::Unbounded();
  }
  void OnEdgeResolved(ObjectId, ObjectId, double) override {}
};

}  // namespace metricprox

#endif  // METRICPROX_CORE_BOUNDER_H_
