#ifndef METRICPROX_CORE_STATUS_H_
#define METRICPROX_CORE_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "core/logging.h"

namespace metricprox {

/// Error categories used across the library (RocksDB-style; the library does
/// not use exceptions).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  kUnavailable,        // transient failure; the caller may retry
  kDeadlineExceeded,   // a per-call timeout or an overall deadline expired
  kResourceExhausted,  // a hard resource cap (e.g. an oracle-call budget)
                       // was exhausted before the operation could finish
};

/// Returns a short human-readable name for a code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// Cheap to copy in the OK case (no allocation); error construction
/// allocates for the message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk (use the default constructor for success).
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    DCHECK(code != StatusCode::kOk) << "use Status::OK() for success";
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Accessing the value of an
/// error StatusOr is a fatal error.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value, mirroring absl::StatusOr ergonomics.
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status.
  StatusOr(Status status) : payload_(std::move(status)) {  // NOLINT
    DCHECK(!std::get<Status>(payload_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& value() const& {
    CHECK(ok()) << "value() on error StatusOr: "
                << std::get<Status>(payload_).ToString();
    return std::get<T>(payload_);
  }

  T& value() & {
    CHECK(ok()) << "value() on error StatusOr: "
                << std::get<Status>(payload_).ToString();
    return std::get<T>(payload_);
  }

  T&& value() && {
    CHECK(ok()) << "value() on error StatusOr: "
                << std::get<Status>(payload_).ToString();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> payload_;
};

/// Propagates a non-OK status out of the calling function.
#define MP_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::metricprox::Status mp_status_ = (expr);    \
    if (!mp_status_.ok()) return mp_status_;     \
  } while (false)

}  // namespace metricprox

#endif  // METRICPROX_CORE_STATUS_H_
