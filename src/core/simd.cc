#include "core/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/logging.h"

#if defined(__x86_64__) || defined(_M_X64)
#define METRICPROX_SIMD_X86 1
#include <emmintrin.h>  // SSE2 (baseline on x86-64)
#include <immintrin.h>  // AVX2 (used only inside target("avx2") functions)
#else
#define METRICPROX_SIMD_X86 0
#endif

namespace metricprox {
namespace simd {

namespace {

/// Shared epilogue of the reduction kernels: the same defensive clamp the
/// scalar bounders have always applied (a maximally tight witness can push
/// lb past ub by floating-point noise only).
Interval FinishInterval(double lb, double ub) {
  if (lb > ub) lb = ub;
  return Interval(lb, ub);
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the semantics; the SIMD tiers below
// must reproduce them bit for bit. The conditional-update form (`if (gap >
// lb)`) is the historical bounder loop verbatim, and it also keeps the
// reference loops scalar under GCC's -O2 cost model so bench comparisons
// measure dispatch honestly.
// ---------------------------------------------------------------------------

Interval PivotScanScalar(const double* a, const double* b, size_t k) {
  double lb = 0.0;
  double ub = kInfDistance;
  for (size_t p = 0; p < k; ++p) {
    const double di = a[p];
    const double dj = b[p];
    const double gap = di > dj ? di - dj : dj - di;
    if (gap > lb) lb = gap;
    const double sum = di + dj;
    if (sum < ub) ub = sum;
  }
  return FinishInterval(lb, ub);
}

Interval TriReduceScalar(const double* di, const double* dj, size_t m,
                         double rho, double inv_rho) {
  double lb = 0.0;
  double ub = kInfDistance;
  for (size_t t = 0; t < m; ++t) {
    const double a = di[t];
    const double b = dj[t];
    const double gap_ij = a * inv_rho - b;
    const double gap_ji = b * inv_rho - a;
    const double gap = gap_ij > gap_ji ? gap_ij : gap_ji;
    if (gap > lb) lb = gap;
    const double sum = rho * (a + b);
    if (sum < ub) ub = sum;
  }
  return FinishInterval(lb, ub);
}

/// One pair, one metric — the exact accumulation pattern of
/// VectorOracle::Distance (same expression forms, same dimension order).
double PairDistanceScalar(const double* x, const double* y, size_t dim,
                          DistanceKind kind) {
  double acc = 0.0;
  switch (kind) {
    case DistanceKind::kL2:
    case DistanceKind::kSquaredL2:
      for (size_t d = 0; d < dim; ++d) {
        const double diff = x[d] - y[d];
        acc += diff * diff;
      }
      return kind == DistanceKind::kL2 ? std::sqrt(acc) : acc;
    case DistanceKind::kL1:
      for (size_t d = 0; d < dim; ++d) {
        acc += std::abs(x[d] - y[d]);
      }
      return acc;
    case DistanceKind::kLinf:
      for (size_t d = 0; d < dim; ++d) {
        const double diff = std::abs(x[d] - y[d]);
        if (diff > acc) acc = diff;
      }
      return acc;
  }
  LOG(Fatal) << "unreachable distance kind";
  return 0.0;
}

void BatchDistanceScalar(const double* points, size_t dim, const IdPair* pairs,
                         size_t count, double* out, DistanceKind kind) {
  for (size_t p = 0; p < count; ++p) {
    const double* x = points + static_cast<size_t>(pairs[p].i) * dim;
    const double* y = points + static_cast<size_t>(pairs[p].j) * dim;
    out[p] = PairDistanceScalar(x, y, dim, kind);
  }
}

const KernelTable kScalarKernels{PivotScanScalar, TriReduceScalar,
                                 BatchDistanceScalar};

#if METRICPROX_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 tier (unconditionally available on x86-64). Two lanes of doubles.
// Bit-identity with the scalar reference:
//  * |di - dj| via andnot(-0.0, di - dj): IEEE negation is exact, so the
//    branchy scalar form and the sign-cleared subtraction agree bitwise;
//  * lane accumulators start at the scalar identities (0 for the max,
//    +inf for the min), so folding lanes into the scalar tail accumulator
//    is just more applications of the same associative max/min.
// ---------------------------------------------------------------------------

double HorizontalMaxSse2(__m128d v) {
  const __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_max_sd(v, hi));
}

double HorizontalMinSse2(__m128d v) {
  const __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_min_sd(v, hi));
}

Interval PivotScanSse2(const double* a, const double* b, size_t k) {
  const __m128d neg_zero = _mm_set1_pd(-0.0);
  __m128d lbv = _mm_setzero_pd();
  __m128d ubv = _mm_set1_pd(kInfDistance);
  size_t p = 0;
  for (; p + 2 <= k; p += 2) {
    const __m128d va = _mm_loadu_pd(a + p);
    const __m128d vb = _mm_loadu_pd(b + p);
    const __m128d gap = _mm_andnot_pd(neg_zero, _mm_sub_pd(va, vb));
    lbv = _mm_max_pd(lbv, gap);
    ubv = _mm_min_pd(ubv, _mm_add_pd(va, vb));
  }
  double lb = HorizontalMaxSse2(lbv);
  double ub = HorizontalMinSse2(ubv);
  for (; p < k; ++p) {
    const double di = a[p];
    const double dj = b[p];
    const double gap = di > dj ? di - dj : dj - di;
    if (gap > lb) lb = gap;
    const double sum = di + dj;
    if (sum < ub) ub = sum;
  }
  return FinishInterval(lb, ub);
}

Interval TriReduceSse2(const double* di, const double* dj, size_t m,
                       double rho, double inv_rho) {
  const __m128d vrho = _mm_set1_pd(rho);
  const __m128d vinv = _mm_set1_pd(inv_rho);
  __m128d lbv = _mm_setzero_pd();
  __m128d ubv = _mm_set1_pd(kInfDistance);
  size_t t = 0;
  for (; t + 2 <= m; t += 2) {
    const __m128d va = _mm_loadu_pd(di + t);
    const __m128d vb = _mm_loadu_pd(dj + t);
    const __m128d gap_ij = _mm_sub_pd(_mm_mul_pd(va, vinv), vb);
    const __m128d gap_ji = _mm_sub_pd(_mm_mul_pd(vb, vinv), va);
    lbv = _mm_max_pd(lbv, _mm_max_pd(gap_ij, gap_ji));
    ubv = _mm_min_pd(ubv, _mm_mul_pd(vrho, _mm_add_pd(va, vb)));
  }
  double lb = HorizontalMaxSse2(lbv);
  double ub = HorizontalMinSse2(ubv);
  for (; t < m; ++t) {
    const double a = di[t];
    const double b = dj[t];
    const double gap_ij = a * inv_rho - b;
    const double gap_ji = b * inv_rho - a;
    const double gap = gap_ij > gap_ji ? gap_ij : gap_ji;
    if (gap > lb) lb = gap;
    const double sum = rho * (a + b);
    if (sum < ub) ub = sum;
  }
  return FinishInterval(lb, ub);
}

/// Two pairs per iteration, one pair per lane. The inner loop walks the
/// dimensions in scalar order, so each lane's accumulation sequence — and
/// therefore its rounding — is exactly the scalar reference's; no FMA can
/// appear because the translation unit is compiled without the fma ISA.
/// _mm_sqrt_pd is correctly rounded and thus agrees with std::sqrt.
void BatchDistanceSse2(const double* points, size_t dim, const IdPair* pairs,
                       size_t count, double* out, DistanceKind kind) {
  const __m128d neg_zero = _mm_set1_pd(-0.0);
  size_t p = 0;
  for (; p + 2 <= count; p += 2) {
    const double* x0 = points + static_cast<size_t>(pairs[p].i) * dim;
    const double* y0 = points + static_cast<size_t>(pairs[p].j) * dim;
    const double* x1 = points + static_cast<size_t>(pairs[p + 1].i) * dim;
    const double* y1 = points + static_cast<size_t>(pairs[p + 1].j) * dim;
    __m128d acc = _mm_setzero_pd();
    switch (kind) {
      case DistanceKind::kL2:
      case DistanceKind::kSquaredL2:
        for (size_t d = 0; d < dim; ++d) {
          const __m128d diff = _mm_sub_pd(_mm_set_pd(x1[d], x0[d]),
                                          _mm_set_pd(y1[d], y0[d]));
          acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
        }
        if (kind == DistanceKind::kL2) acc = _mm_sqrt_pd(acc);
        break;
      case DistanceKind::kL1:
        for (size_t d = 0; d < dim; ++d) {
          const __m128d diff = _mm_sub_pd(_mm_set_pd(x1[d], x0[d]),
                                          _mm_set_pd(y1[d], y0[d]));
          acc = _mm_add_pd(acc, _mm_andnot_pd(neg_zero, diff));
        }
        break;
      case DistanceKind::kLinf:
        for (size_t d = 0; d < dim; ++d) {
          const __m128d diff = _mm_sub_pd(_mm_set_pd(x1[d], x0[d]),
                                          _mm_set_pd(y1[d], y0[d]));
          acc = _mm_max_pd(acc, _mm_andnot_pd(neg_zero, diff));
        }
        break;
    }
    _mm_storeu_pd(out + p, acc);
  }
  if (p < count) {
    BatchDistanceScalar(points, dim, pairs + p, count - p, out + p, kind);
  }
}

const KernelTable kSse2Kernels{PivotScanSse2, TriReduceSse2,
                               BatchDistanceSse2};

// ---------------------------------------------------------------------------
// AVX2 tier: four lanes of doubles, compiled per-function via the target
// attribute (the build has no global -m flags, so nothing outside these
// functions can emit AVX instructions and trip an older host). The target
// enables avx2 but deliberately NOT fma: without the fma ISA the compiler
// cannot contract mul+add pairs, which keeps batch-distance accumulation
// bit-identical to the scalar reference.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) double HorizontalMaxAvx2(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d m = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)));
}

__attribute__((target("avx2"))) double HorizontalMinAvx2(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d m = _mm_min_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)));
}

__attribute__((target("avx2"))) Interval PivotScanAvx2(const double* a,
                                                       const double* b,
                                                       size_t k) {
  const __m256d neg_zero = _mm256_set1_pd(-0.0);
  __m256d lbv = _mm256_setzero_pd();
  __m256d ubv = _mm256_set1_pd(kInfDistance);
  size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const __m256d va = _mm256_loadu_pd(a + p);
    const __m256d vb = _mm256_loadu_pd(b + p);
    const __m256d gap = _mm256_andnot_pd(neg_zero, _mm256_sub_pd(va, vb));
    lbv = _mm256_max_pd(lbv, gap);
    ubv = _mm256_min_pd(ubv, _mm256_add_pd(va, vb));
  }
  double lb = HorizontalMaxAvx2(lbv);
  double ub = HorizontalMinAvx2(ubv);
  for (; p < k; ++p) {
    const double di = a[p];
    const double dj = b[p];
    const double gap = di > dj ? di - dj : dj - di;
    if (gap > lb) lb = gap;
    const double sum = di + dj;
    if (sum < ub) ub = sum;
  }
  return FinishInterval(lb, ub);
}

__attribute__((target("avx2"))) Interval TriReduceAvx2(const double* di,
                                                       const double* dj,
                                                       size_t m, double rho,
                                                       double inv_rho) {
  const __m256d vrho = _mm256_set1_pd(rho);
  const __m256d vinv = _mm256_set1_pd(inv_rho);
  __m256d lbv = _mm256_setzero_pd();
  __m256d ubv = _mm256_set1_pd(kInfDistance);
  size_t t = 0;
  for (; t + 4 <= m; t += 4) {
    const __m256d va = _mm256_loadu_pd(di + t);
    const __m256d vb = _mm256_loadu_pd(dj + t);
    const __m256d gap_ij = _mm256_sub_pd(_mm256_mul_pd(va, vinv), vb);
    const __m256d gap_ji = _mm256_sub_pd(_mm256_mul_pd(vb, vinv), va);
    lbv = _mm256_max_pd(lbv, _mm256_max_pd(gap_ij, gap_ji));
    ubv = _mm256_min_pd(ubv, _mm256_mul_pd(vrho, _mm256_add_pd(va, vb)));
  }
  double lb = HorizontalMaxAvx2(lbv);
  double ub = HorizontalMinAvx2(ubv);
  for (; t < m; ++t) {
    const double a = di[t];
    const double b = dj[t];
    const double gap_ij = a * inv_rho - b;
    const double gap_ji = b * inv_rho - a;
    const double gap = gap_ij > gap_ji ? gap_ij : gap_ji;
    if (gap > lb) lb = gap;
    const double sum = rho * (a + b);
    if (sum < ub) ub = sum;
  }
  return FinishInterval(lb, ub);
}

__attribute__((target("avx2"))) void BatchDistanceAvx2(
    const double* points, size_t dim, const IdPair* pairs, size_t count,
    double* out, DistanceKind kind) {
  const __m256d neg_zero = _mm256_set1_pd(-0.0);
  size_t p = 0;
  for (; p + 4 <= count; p += 4) {
    const double* x[4];
    const double* y[4];
    for (int l = 0; l < 4; ++l) {
      x[l] = points + static_cast<size_t>(pairs[p + l].i) * dim;
      y[l] = points + static_cast<size_t>(pairs[p + l].j) * dim;
    }
    __m256d acc = _mm256_setzero_pd();
    switch (kind) {
      case DistanceKind::kL2:
      case DistanceKind::kSquaredL2:
        for (size_t d = 0; d < dim; ++d) {
          const __m256d diff =
              _mm256_sub_pd(_mm256_set_pd(x[3][d], x[2][d], x[1][d], x[0][d]),
                            _mm256_set_pd(y[3][d], y[2][d], y[1][d], y[0][d]));
          acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
        }
        if (kind == DistanceKind::kL2) acc = _mm256_sqrt_pd(acc);
        break;
      case DistanceKind::kL1:
        for (size_t d = 0; d < dim; ++d) {
          const __m256d diff =
              _mm256_sub_pd(_mm256_set_pd(x[3][d], x[2][d], x[1][d], x[0][d]),
                            _mm256_set_pd(y[3][d], y[2][d], y[1][d], y[0][d]));
          acc = _mm256_add_pd(acc, _mm256_andnot_pd(neg_zero, diff));
        }
        break;
      case DistanceKind::kLinf:
        for (size_t d = 0; d < dim; ++d) {
          const __m256d diff =
              _mm256_sub_pd(_mm256_set_pd(x[3][d], x[2][d], x[1][d], x[0][d]),
                            _mm256_set_pd(y[3][d], y[2][d], y[1][d], y[0][d]));
          acc = _mm256_max_pd(acc, _mm256_andnot_pd(neg_zero, diff));
        }
        break;
    }
    _mm256_storeu_pd(out + p, acc);
  }
  if (p < count) {
    BatchDistanceScalar(points, dim, pairs + p, count - p, out + p, kind);
  }
}

const KernelTable kAvx2Kernels{PivotScanAvx2, TriReduceAvx2,
                               BatchDistanceAvx2};

#endif  // METRICPROX_SIMD_X86

Tier ClampToDetected(Tier tier) {
  const Tier cap = DetectedTier();
  return static_cast<uint8_t>(tier) <= static_cast<uint8_t>(cap) ? tier : cap;
}

/// Resolves the startup tier: METRICPROX_SIMD if set (clamped with a
/// warning when the hardware cannot honor it), otherwise the probe.
Tier ResolveInitialTier() {
  const char* env = std::getenv("METRICPROX_SIMD");
  if (env == nullptr || env[0] == '\0' ||
      std::string_view(env) == "auto") {
    return DetectedTier();
  }
  StatusOr<Tier> parsed = ParseTier(env);
  CHECK(parsed.ok()) << "METRICPROX_SIMD=" << env << ": "
                     << parsed.status().ToString();
  const Tier clamped = ClampToDetected(*parsed);
  if (clamped != *parsed) {
    LOG(Warning) << "METRICPROX_SIMD=" << env
                 << " not supported by this CPU; degrading to "
                 << TierName(clamped);
  }
  return clamped;
}

/// The active tier, readable concurrently with SetTier: bound scans from
/// concurrent resolver sessions read this on every kernel dispatch, so the
/// cell is atomic (relaxed — the tier is a self-contained value, nothing
/// is published through it).
std::atomic<Tier>& ActiveTierRef() {
  static std::atomic<Tier> tier{ResolveInitialTier()};
  return tier;
}

}  // namespace

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

StatusOr<Tier> ParseTier(std::string_view text) {
  if (text == "scalar") return Tier::kScalar;
  if (text == "sse2") return Tier::kSse2;
  if (text == "avx2") return Tier::kAvx2;
  return Status::InvalidArgument("unknown SIMD tier (want scalar|sse2|avx2): " +
                                 std::string(text));
}

Tier DetectedTier() {
#if METRICPROX_SIMD_X86
  static const Tier detected = [] {
    if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
    // SSE2 is architecturally guaranteed on x86-64, but probe anyway so the
    // answer is honest if this unit is ever compiled for 32-bit x86.
    if (__builtin_cpu_supports("sse2")) return Tier::kSse2;
    return Tier::kScalar;
  }();
  return detected;
#else
  return Tier::kScalar;
#endif
}

Tier ActiveTier() { return ActiveTierRef().load(std::memory_order_relaxed); }

Tier SetTier(Tier tier) {
  const Tier clamped = ClampToDetected(tier);
  ActiveTierRef().store(clamped, std::memory_order_relaxed);
  return clamped;
}

const KernelTable& KernelsForTier(Tier tier) {
  switch (ClampToDetected(tier)) {
    case Tier::kScalar:
      break;
#if METRICPROX_SIMD_X86
    case Tier::kSse2:
      return kSse2Kernels;
    case Tier::kAvx2:
      return kAvx2Kernels;
#else
    case Tier::kSse2:
    case Tier::kAvx2:
      break;  // unreachable: DetectedTier() is kScalar off x86
#endif
  }
  return kScalarKernels;
}

const KernelTable& ActiveKernels() { return KernelsForTier(ActiveTier()); }

Interval TriMergeBounds(const ObjectId* ids_a, const double* dist_a, size_t na,
                        const ObjectId* ids_b, const double* dist_b, size_t nb,
                        double rho, TriScratch* scratch) {
  // The caller-owned scratch is reused across calls: common-neighbor counts
  // vary wildly (a few in sparse phases, O(n) after a warm start), and the
  // reduction kernel wants the whole intersection contiguous so the clamp
  // happens once, not per chunk (per-chunk clamping would change lb near
  // crossing intervals).
  std::vector<double>& di_scratch = scratch->di;
  std::vector<double>& dj_scratch = scratch->dj;
  di_scratch.clear();
  dj_scratch.clear();
  size_t x = 0;
  size_t y = 0;
  while (x < na && y < nb) {
    if (ids_a[x] == ids_b[y]) {
      di_scratch.push_back(dist_a[x]);
      dj_scratch.push_back(dist_b[y]);
      ++x;
      ++y;
    } else if (ids_a[x] < ids_b[y]) {
      ++x;
    } else {
      ++y;
    }
  }
  return ActiveKernels().tri_reduce(di_scratch.data(), dj_scratch.data(),
                                    di_scratch.size(), rho, 1.0 / rho);
}

}  // namespace simd
}  // namespace metricprox
