#ifndef METRICPROX_CORE_STATS_H_
#define METRICPROX_CORE_STATS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace metricprox {

// The single source of truth for every ResolverStats field. The struct
// declaration, Reset, operator+=, ToString, the field count, the field
// name list and the RunReport JSON object (obs/report.cc) are all
// generated from this list, so adding a counter is exactly one line here
// — it can no longer be added to the struct but forgotten in the
// aggregation or the serializers. telemetry_test pins the JSON report to
// exactly one key per entry.
//
// Field semantics:
//   oracle_calls        calls that reached the distance oracle — the
//                       paper's headline metric.
//   decided_by_bounds   comparisons answered purely from bounds (each
//                       avoided >= 1 oracle call: the "save-ups").
//   decided_by_cache    comparisons answered because the edge was already
//                       resolved earlier.
//   decided_by_oracle   comparisons that had to fall back to the oracle.
//   undecided           comparisons the resolver could neither prove nor
//                       disprove without a resolution the caller did not
//                       request (the one-sided proof verbs returning "not
//                       proven"); no oracle call happens on these paths.
//   decided_by_slack    comparisons answered approximately under a
//                       ResolutionPolicy: the bound interval's relative gap
//                       was within eps (or the budget forced the decision),
//                       so the comparison was settled against the interval
//                       midpoint without an oracle call.
//   budget_exhausted    subset of decided_by_slack forced by an exhausted
//                       oracle budget; the realized error of these may
//                       exceed eps (always <= decided_by_slack).
//   decided_by_weak     comparisons answered from the weak oracle's
//                       certified interval [w/alpha, w*alpha] (intersected
//                       with the scheme's bounds); exact whenever the weak
//                       oracle honors its advertised error model.
//   weak_calls          weak-oracle consultations made by the resolver
//                       (one per comparison that consulted the weak
//                       interval, whether or not it decided; always
//                       >= decided_by_weak). Fresh weak-oracle evaluations
//                       are memoized per pair, so the wrapped oracle may
//                       see fewer calls than this counter.
//   comparisons         total comparison requests (LessThan + PairLess +
//                       the batch verbs, one per pair).
//   bound_queries       bound-interval queries issued to the bounder.
//   batch_calls         BatchDistance invocations shipped to the oracle
//                       (each covers >= 1 pair).
//   batch_resolved_pairs pairs resolved through the batch transport; each
//                       is also in oracle_calls, so batch_resolved_pairs
//                       <= oracle_calls always holds.
//   bounder_seconds     wall time inside the bounder — the paper's "CPU
//                       overhead".
//   oracle_seconds      wall time inside the oracle (real, not simulated).
//   batch_oracle_seconds subset of oracle_seconds spent in BatchDistance.
//   simulated_oracle_seconds simulated latency from SimulatedCostOracle.
//   weak_simulated_seconds simulated latency of fresh weak-oracle
//                       evaluations (WeakOracle::Options::cost_seconds per
//                       memoized-miss call; 0 when no weak oracle or no
//                       cost is configured).
//   oracle_retries      attempts re-shipped by RetryingOracle after a
//                       transient failure (per pair, not per round-trip).
//   oracle_timeouts     per-call timeouts observed at the oracle layer.
//   oracle_failures     pair resolutions that failed permanently.
//   retry_backoff_seconds wall time sleeping in retry backoff.
//   store_hits          pairs answered by the persistent distance store.
//   store_misses        pairs the store shipped to the inner oracle.
//   store_loaded_edges  edges bulk-loaded for the cross-run warm start.
//   wal_appends         fresh distances appended to the write-ahead log.
//   compactions         store snapshot rewrites performed during the run.
//   certs_emitted       bound certificates emitted by the audit shim
//                       (== certs_verified + certs_failed always).
//   certs_verified      certificates the independent Verifier confirmed.
//   certs_failed        certificates that failed verification — nonzero
//                       is a bug in a bound scheme (or the verifier).
//   certs_uncertified   bound decisions whose scheme has no certification
//                       support; counted separately, never as failures.
//   sessions_active     gauge merged in by SessionPool::AccumulateStats:
//                       the peak number of concurrently open resolver
//                       sessions over the pool's lifetime (0 on runs that
//                       never used the session layer).
//   shared_graph_hits   pair resolutions answered by the pool's shared
//                       concurrent graph instead of the base oracle (a
//                       cross-session cache hit; each is still counted in
//                       oracle_calls by the session's resolver, so
//                       shared_graph_hits <= oracle_calls always holds).
//                       Schedule-dependent under concurrency: which session
//                       pays for a pair depends on arrival order.
//   coalesced_batches   BatchDistance round-trips shipped by the
//                       cross-session BatchCoalescer (each covers >= 1
//                       pending pair from >= 1 session).
//   cross_session_dedup_hits resolutions that joined a pair already
//                       pending in the coalescer from another submission
//                       instead of shipping it again — the cross-session
//                       amortization the session layer exists for.
//   spans_emitted       causal spans opened (span_begin trace events) over
//                       the run, counted by the observability hub's flight
//                       recorder; 0 on runs without the hub attached.
//   metrics_samples     time-series ticks taken by the hub's metrics
//                       sampler thread (one JSONL line each).
//   flight_dumps        flight-recorder snapshots written to disk, over
//                       every trigger (error status, watchdog stall,
//                       CHECK-failure hook, dump request, exit dump).
//   watchdog_stalls     stall episodes flagged by the hub's watchdog: a
//                       coalescer waiter outlived its linger deadline by
//                       more than the configured factor. Each episode is
//                       counted once and produces one flight dump.
//   kernel_dispatch     configuration gauge, not a counter: the simd::Tier
//                       id (0 scalar, 1 sse2, 2 avx2) of the bound kernels
//                       active when the resolver was constructed or its
//                       stats last reset. Under operator+= it sums like
//                       every field, so only aggregate stats across runs
//                       of one tier (run reports always cover one).
#define METRICPROX_RESOLVER_STATS_FIELDS(X) \
  X(uint64_t, oracle_calls)                 \
  X(uint64_t, decided_by_bounds)            \
  X(uint64_t, decided_by_cache)             \
  X(uint64_t, decided_by_oracle)            \
  X(uint64_t, undecided)                    \
  X(uint64_t, decided_by_slack)             \
  X(uint64_t, budget_exhausted)             \
  X(uint64_t, decided_by_weak)              \
  X(uint64_t, weak_calls)                   \
  X(uint64_t, comparisons)                  \
  X(uint64_t, bound_queries)                \
  X(uint64_t, batch_calls)                  \
  X(uint64_t, batch_resolved_pairs)         \
  X(double, bounder_seconds)                \
  X(double, oracle_seconds)                 \
  X(double, batch_oracle_seconds)           \
  X(double, simulated_oracle_seconds)       \
  X(double, weak_simulated_seconds)         \
  X(uint64_t, oracle_retries)               \
  X(uint64_t, oracle_timeouts)              \
  X(uint64_t, oracle_failures)              \
  X(double, retry_backoff_seconds)          \
  X(uint64_t, store_hits)                   \
  X(uint64_t, store_misses)                 \
  X(uint64_t, store_loaded_edges)           \
  X(uint64_t, wal_appends)                  \
  X(uint64_t, compactions)                  \
  X(uint64_t, certs_emitted)                \
  X(uint64_t, certs_verified)               \
  X(uint64_t, certs_failed)                 \
  X(uint64_t, certs_uncertified)            \
  X(uint64_t, sessions_active)              \
  X(uint64_t, shared_graph_hits)            \
  X(uint64_t, coalesced_batches)            \
  X(uint64_t, cross_session_dedup_hits)     \
  X(uint64_t, spans_emitted)                \
  X(uint64_t, metrics_samples)              \
  X(uint64_t, flight_dumps)                 \
  X(uint64_t, watchdog_stalls)              \
  X(uint64_t, kernel_dispatch)

/// Counters collected by a BoundedResolver while a proximity algorithm
/// runs. See the X-macro above for per-field semantics; `oracle_calls` is
/// the headline metric of the paper and `decided_by_bounds` counts the
/// comparisons resolved without touching the oracle.
struct ResolverStats {
#define METRICPROX_STATS_DECLARE_FIELD(type, name) type name{};
  METRICPROX_RESOLVER_STATS_FIELDS(METRICPROX_STATS_DECLARE_FIELD)
#undef METRICPROX_STATS_DECLARE_FIELD

  void Reset() { *this = ResolverStats(); }

  ResolverStats& operator+=(const ResolverStats& o) {
#define METRICPROX_STATS_ADD_FIELD(type, name) name += o.name;
    METRICPROX_RESOLVER_STATS_FIELDS(METRICPROX_STATS_ADD_FIELD)
#undef METRICPROX_STATS_ADD_FIELD
    return *this;
  }

  /// Single-line `name=value` dump of every field, in declaration order
  /// (for examples and debugging).
  std::string ToString() const;
};

/// Number of ResolverStats fields — one per X-macro entry.
inline constexpr size_t kResolverStatsFieldCount =
#define METRICPROX_STATS_COUNT_FIELD(type, name) +1
    0 METRICPROX_RESOLVER_STATS_FIELDS(METRICPROX_STATS_COUNT_FIELD);
#undef METRICPROX_STATS_COUNT_FIELD

/// Field names in declaration order; the JSON report's `stats` object
/// carries exactly these keys.
std::vector<std::string_view> ResolverStatsFieldNames();

/// Monotonic stopwatch used for the fine-grained stat timers.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace metricprox

#endif  // METRICPROX_CORE_STATS_H_
