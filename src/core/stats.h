#ifndef METRICPROX_CORE_STATS_H_
#define METRICPROX_CORE_STATS_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace metricprox {

/// Counters collected by a BoundedResolver while a proximity algorithm runs.
///
/// `oracle_calls` is the headline metric of the paper; `decided_by_bounds`
/// counts comparisons resolved without touching the oracle (the "save-ups").
struct ResolverStats {
  /// Calls that reached the distance oracle.
  uint64_t oracle_calls = 0;
  /// Comparisons answered purely from bounds (each avoided >= 1 oracle call).
  uint64_t decided_by_bounds = 0;
  /// Comparisons answered because the edge was already resolved earlier.
  uint64_t decided_by_cache = 0;
  /// Comparisons that had to fall back to the oracle.
  uint64_t decided_by_oracle = 0;
  /// Comparisons the resolver could neither prove nor disprove without a
  /// resolution the caller did not request (the one-sided proof verbs
  /// ProvenGreaterThan / ProvenGreaterOrEqual returning "not proven"). No
  /// oracle call happens on these paths; they used to be misattributed to
  /// decided_by_oracle.
  uint64_t undecided = 0;
  /// Total comparison requests (LessThan + PairLess + the batch verbs,
  /// one per pair).
  uint64_t comparisons = 0;
  /// Bound-interval queries issued to the plugged-in bounder.
  uint64_t bound_queries = 0;
  /// BatchDistance invocations shipped to the oracle (each covers >= 1
  /// pair). The amortization headline: batched algorithms issue the same
  /// oracle_calls in far fewer round-trips.
  uint64_t batch_calls = 0;
  /// Pairs resolved through the batch transport. Each is also counted in
  /// oracle_calls, so batch_resolved_pairs <= oracle_calls always holds.
  uint64_t batch_resolved_pairs = 0;
  /// Wall time spent inside the bounder (bounds + updates), in seconds:
  /// the paper's "CPU overhead".
  double bounder_seconds = 0.0;
  /// Wall time spent inside the oracle, in seconds (real, not simulated).
  double oracle_seconds = 0.0;
  /// Subset of oracle_seconds spent inside BatchDistance calls — the
  /// wall-time attribution of the batch transport.
  double batch_oracle_seconds = 0.0;
  /// Simulated oracle latency accumulated by a SimulatedCostOracle, seconds.
  double simulated_oracle_seconds = 0.0;
  /// Oracle attempts re-shipped by a RetryingOracle after a transient
  /// failure (counted per pair, not per batch round-trip).
  uint64_t oracle_retries = 0;
  /// Per-call timeouts observed at the oracle layer (DeadlineExceeded from
  /// a single attempt, before any retry).
  uint64_t oracle_timeouts = 0;
  /// Pair resolutions that failed permanently (retries exhausted or the
  /// overall deadline expired) and surfaced as a Status to the caller.
  uint64_t oracle_failures = 0;
  /// Wall time spent sleeping in retry backoff, in seconds.
  double retry_backoff_seconds = 0.0;
  /// Pairs answered by the persistent distance store at the oracle layer
  /// (a PersistentOracle hit: the inner oracle was never touched).
  uint64_t store_hits = 0;
  /// Pairs the store could not answer and shipped to the inner oracle.
  uint64_t store_misses = 0;
  /// Edges bulk-loaded from the store into the partial graph before the
  /// run (cross-run warm start). Each starts as a resolver cache hit.
  uint64_t store_loaded_edges = 0;
  /// Freshly resolved distances appended to the store's write-ahead log.
  uint64_t wal_appends = 0;
  /// Store compactions (snapshot rewrites) performed during the run.
  uint64_t compactions = 0;
  /// Bound certificates emitted by the audit shim (certs_emitted ==
  /// certs_verified + certs_failed always holds).
  uint64_t certs_emitted = 0;
  /// Certificates the independent Verifier confirmed.
  uint64_t certs_verified = 0;
  /// Certificates that failed verification — any nonzero value is a bug in
  /// a bound scheme (or the verifier) and fails `--audit` runs.
  uint64_t certs_failed = 0;
  /// Bound-decided comparisons whose scheme has no certification support
  /// (e.g. ADM/TLAESA); counted separately, never as failures.
  uint64_t certs_uncertified = 0;

  void Reset() { *this = ResolverStats(); }

  ResolverStats& operator+=(const ResolverStats& o) {
    oracle_calls += o.oracle_calls;
    decided_by_bounds += o.decided_by_bounds;
    decided_by_cache += o.decided_by_cache;
    decided_by_oracle += o.decided_by_oracle;
    undecided += o.undecided;
    comparisons += o.comparisons;
    bound_queries += o.bound_queries;
    batch_calls += o.batch_calls;
    batch_resolved_pairs += o.batch_resolved_pairs;
    bounder_seconds += o.bounder_seconds;
    oracle_seconds += o.oracle_seconds;
    batch_oracle_seconds += o.batch_oracle_seconds;
    simulated_oracle_seconds += o.simulated_oracle_seconds;
    oracle_retries += o.oracle_retries;
    oracle_timeouts += o.oracle_timeouts;
    oracle_failures += o.oracle_failures;
    retry_backoff_seconds += o.retry_backoff_seconds;
    store_hits += o.store_hits;
    store_misses += o.store_misses;
    store_loaded_edges += o.store_loaded_edges;
    wal_appends += o.wal_appends;
    compactions += o.compactions;
    certs_emitted += o.certs_emitted;
    certs_verified += o.certs_verified;
    certs_failed += o.certs_failed;
    certs_uncertified += o.certs_uncertified;
    return *this;
  }

  /// Multi-line human-readable dump (for examples and debugging).
  std::string ToString() const;
};

/// Monotonic stopwatch used for the fine-grained stat timers.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace metricprox

#endif  // METRICPROX_CORE_STATS_H_
