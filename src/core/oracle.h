#ifndef METRICPROX_CORE_ORACLE_H_
#define METRICPROX_CORE_ORACLE_H_

#include <string_view>

#include "core/types.h"

namespace metricprox {

/// The expensive distance function over a fixed universe of objects
/// identified by dense ids `0 .. num_objects()-1`.
///
/// Implementations MUST be metric — symmetric, non-negative, zero only for
/// identical objects, satisfying the triangle inequality — or a *relaxed*
/// metric (d(i,j) <= rho*(d(i,k)+d(k,j)) for a documented rho >= 1, e.g.
/// squared Euclidean with rho = 2), in which case only rho-aware schemes
/// apply (see bounds/tri.h). Every bound scheme silently produces wrong
/// answers on inputs violating its assumed inequality (tests sample-check
/// the property for each shipped oracle).
///
/// A call to Distance() models one *expensive* oracle invocation (map API
/// round-trip, edit-distance DP, image comparison, ...). Proximity
/// algorithms never call this directly; they go through BoundedResolver,
/// which counts calls and consults the plugged-in bound scheme first.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Exact distance between two distinct objects. Requires i != j and both
  /// ids in range.
  virtual double Distance(ObjectId i, ObjectId j) = 0;

  /// Number of objects in the universe.
  virtual ObjectId num_objects() const = 0;

  /// Short identifier for reports, e.g. "euclidean" or "road-network".
  virtual std::string_view name() const = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_CORE_ORACLE_H_
