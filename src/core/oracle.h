#ifndef METRICPROX_CORE_ORACLE_H_
#define METRICPROX_CORE_ORACLE_H_

#include <span>
#include <string_view>

#include "core/logging.h"
#include "core/status.h"
#include "core/types.h"

namespace metricprox {

/// The expensive distance function over a fixed universe of objects
/// identified by dense ids `0 .. num_objects()-1`.
///
/// Implementations MUST be metric — symmetric, non-negative, zero only for
/// identical objects, satisfying the triangle inequality — or a *relaxed*
/// metric (d(i,j) <= rho*(d(i,k)+d(k,j)) for a documented rho >= 1, e.g.
/// squared Euclidean with rho = 2), in which case only rho-aware schemes
/// apply (see bounds/tri.h). Every bound scheme silently produces wrong
/// answers on inputs violating its assumed inequality (tests sample-check
/// the property for each shipped oracle).
///
/// A call to Distance() models one *expensive* oracle invocation (map API
/// round-trip, edit-distance DP, image comparison, ...). Proximity
/// algorithms never call this directly; they go through BoundedResolver,
/// which counts calls and consults the plugged-in bound scheme first.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Exact distance between two distinct objects. Requires i != j and both
  /// ids in range.
  virtual double Distance(ObjectId i, ObjectId j) = 0;

  /// Resolves a whole batch of pairs: out[k] = dist(pairs[k]). Requires the
  /// spans to have equal length and every pair to satisfy the Distance()
  /// contract (distinct, in range). Pairs must be deduplicated by the caller
  /// (BoundedResolver does) so one edge is never billed twice in a batch.
  ///
  /// This is the amortization point of the batched resolution pipeline: a
  /// production oracle (map API, edit-distance farm) answers a group of
  /// independent requests far cheaper than the same requests one at a time.
  /// The default simply loops Distance(); the shipped oracles override it
  /// with a parallel implementation (their Distance is pure, so evaluating
  /// pairs concurrently is safe even though the resolver stays
  /// single-threaded). Implementations must be bit-identical to the scalar
  /// path: out[k] == Distance(pairs[k].i, pairs[k].j) exactly.
  virtual void BatchDistance(std::span<const IdPair> pairs,
                             std::span<double> out) {
    CHECK_EQ(pairs.size(), out.size());
    for (size_t k = 0; k < pairs.size(); ++k) {
      out[k] = Distance(pairs[k].i, pairs[k].j);
    }
  }

  /// Fallible variant of Distance(). Infallible oracles (everything local:
  /// matrices, vectors, strings) inherit this adapter, which never fails;
  /// middleware that models or survives remote failure (FaultInjectingOracle,
  /// RetryingOracle) overrides it. Callers that cannot tolerate failure keep
  /// using Distance(); BoundedResolver routes through the Try verbs so a
  /// failure can surface as a Status instead of aborting.
  virtual StatusOr<double> TryDistance(ObjectId i, ObjectId j) {
    return Distance(i, j);
  }

  /// Fallible variant of BatchDistance() with per-pair outcomes:
  /// out[k] is meaningful iff statuses[k].ok(). Returns OK iff every pair
  /// succeeded; otherwise returns the first non-OK per-pair status so
  /// callers that don't need pair granularity still get a real error.
  /// Successful entries must be bit-identical to Distance(pairs[k]) — the
  /// partial results are what make partial-batch retry (re-shipping only
  /// the failed pairs) possible without spending duplicate oracle calls.
  /// The default adapter delegates to BatchDistance() and reports all-OK.
  virtual Status TryBatchDistance(std::span<const IdPair> pairs,
                                  std::span<double> out,
                                  std::span<Status> statuses) {
    CHECK_EQ(pairs.size(), out.size());
    CHECK_EQ(pairs.size(), statuses.size());
    BatchDistance(pairs, out);
    for (size_t k = 0; k < pairs.size(); ++k) statuses[k] = Status::OK();
    return Status::OK();
  }

  /// Number of objects in the universe.
  virtual ObjectId num_objects() const = 0;

  /// Short identifier for reports, e.g. "euclidean" or "road-network".
  virtual std::string_view name() const = 0;

  /// Worker-thread budget for parallel BatchDistance overrides. 0 (default)
  /// defers to METRICPROX_THREADS and then the hardware. Virtual so wrappers
  /// forward the knob to the oracle they decorate — setting it anywhere in a
  /// middleware stack reaches the implementation that actually spawns
  /// threads.
  virtual void set_batch_workers(unsigned workers) { batch_workers_ = workers; }
  virtual unsigned batch_workers() const { return batch_workers_; }

 private:
  unsigned batch_workers_ = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_CORE_ORACLE_H_
