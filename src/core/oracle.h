#ifndef METRICPROX_CORE_ORACLE_H_
#define METRICPROX_CORE_ORACLE_H_

#include <span>
#include <string_view>

#include "core/logging.h"
#include "core/types.h"

namespace metricprox {

/// The expensive distance function over a fixed universe of objects
/// identified by dense ids `0 .. num_objects()-1`.
///
/// Implementations MUST be metric — symmetric, non-negative, zero only for
/// identical objects, satisfying the triangle inequality — or a *relaxed*
/// metric (d(i,j) <= rho*(d(i,k)+d(k,j)) for a documented rho >= 1, e.g.
/// squared Euclidean with rho = 2), in which case only rho-aware schemes
/// apply (see bounds/tri.h). Every bound scheme silently produces wrong
/// answers on inputs violating its assumed inequality (tests sample-check
/// the property for each shipped oracle).
///
/// A call to Distance() models one *expensive* oracle invocation (map API
/// round-trip, edit-distance DP, image comparison, ...). Proximity
/// algorithms never call this directly; they go through BoundedResolver,
/// which counts calls and consults the plugged-in bound scheme first.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Exact distance between two distinct objects. Requires i != j and both
  /// ids in range.
  virtual double Distance(ObjectId i, ObjectId j) = 0;

  /// Resolves a whole batch of pairs: out[k] = dist(pairs[k]). Requires the
  /// spans to have equal length and every pair to satisfy the Distance()
  /// contract (distinct, in range). Pairs must be deduplicated by the caller
  /// (BoundedResolver does) so one edge is never billed twice in a batch.
  ///
  /// This is the amortization point of the batched resolution pipeline: a
  /// production oracle (map API, edit-distance farm) answers a group of
  /// independent requests far cheaper than the same requests one at a time.
  /// The default simply loops Distance(); the shipped oracles override it
  /// with a parallel implementation (their Distance is pure, so evaluating
  /// pairs concurrently is safe even though the resolver stays
  /// single-threaded). Implementations must be bit-identical to the scalar
  /// path: out[k] == Distance(pairs[k].i, pairs[k].j) exactly.
  virtual void BatchDistance(std::span<const IdPair> pairs,
                             std::span<double> out) {
    CHECK_EQ(pairs.size(), out.size());
    for (size_t k = 0; k < pairs.size(); ++k) {
      out[k] = Distance(pairs[k].i, pairs[k].j);
    }
  }

  /// Number of objects in the universe.
  virtual ObjectId num_objects() const = 0;

  /// Short identifier for reports, e.g. "euclidean" or "road-network".
  virtual std::string_view name() const = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_CORE_ORACLE_H_
