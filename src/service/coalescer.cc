#include "service/coalescer.h"

#include <algorithm>

#include "core/logging.h"
#include "obs/span.h"
#include "obs/telemetry.h"

namespace metricprox {

BatchCoalescer::BatchCoalescer(DistanceOracle* base,
                               const CoalescerOptions& options)
    : base_(base), options_(options) {
  CHECK(base != nullptr);
  CHECK_GT(options_.max_batch_pairs, 0u);
  CHECK_GT(options_.max_pending_pairs, 0u);
  CHECK_GE(options_.linger_seconds, 0.0);
  if (!options_.manual_flush) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

BatchCoalescer::~BatchCoalescer() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();  // release backpressure-blocked submitters
  }
  if (flusher_.joinable()) flusher_.join();
  // Manual mode (or pairs enqueued after the flusher drained): ship the
  // remainder so no waiter is left blocked forever, then wait until every
  // released waiter has actually left Resolve() — the members below this
  // frame (mu_, the cvs) must outlive their last use.
  std::unique_lock<std::mutex> lock(mu_);
  while (!queue_.empty()) ShipOneBatch(lock);
  idle_cv_.wait(lock, [&] { return active_resolves_ == 0; });
}

Status BatchCoalescer::Resolve(std::span<const IdPair> pairs,
                               std::span<double> out,
                               std::span<Status> statuses, Deadline deadline,
                               Telemetry* waiter_telemetry) {
  CHECK_EQ(pairs.size(), out.size());
  CHECK_EQ(pairs.size(), statuses.size());

  struct Wait {
    size_t index;
    Entry entry;
  };
  std::vector<Wait> waits;
  waits.reserve(pairs.size());
  // Entries this call already joined or created, so a repeated pair within
  // one request maps to one entry without charging a cross-call dedup hit.
  std::unordered_map<EdgeKey, Entry, EdgeKeyHash> local;

  std::unique_lock<std::mutex> lock(mu_);
  ++active_resolves_;
  bool enqueued_fresh = false;
  {
    // Spans the enqueue phase. Its count is fresh-enqueued + cross-session
    // joins (local repeats, trivial pairs and rejected pairs excluded), so
    // summed over every submitter it equals pairs_shipped + dedup_hits at
    // quiescence — the trace-stream identity the validator checks.
    ScopedSpan submit_span(waiter_telemetry, "coalesce_submit");
    uint64_t submitted = 0;
    for (size_t k = 0; k < pairs.size(); ++k) {
      const ObjectId i = pairs[k].i;
      const ObjectId j = pairs[k].j;
      statuses[k] = Status::OK();
      if (i == j) {
        out[k] = 0.0;
        continue;
      }
      const EdgeKey key(i, j);
      auto seen = local.find(key);
      if (seen != local.end()) {
        waits.push_back({k, seen->second});
        continue;
      }
      auto it = pending_.find(key);
      if (it != pending_.end()) {
        // Another submission (typically another session) already has this
        // pair in flight: join it instead of shipping it again.
        ++counters_.dedup_hits;
        ++submitted;
        if (waiter_telemetry != nullptr) {
          Pending& pending = *it->second;
          if (std::find(pending.waiters.begin(), pending.waiters.end(),
                        waiter_telemetry) == pending.waiters.end()) {
            pending.waiters.push_back(waiter_telemetry);
          }
          if (waiter_telemetry->tracing()) {
            TraceEvent event;
            event.kind = TraceEventKind::kCoalesceDedup;
            event.i = key.lo();
            event.j = key.hi();
            event.count = 1;
            waiter_telemetry->Emit(std::move(event));
          }
        }
        local.emplace(key, it->second);
        waits.push_back({k, it->second});
        continue;
      }
      // Backpressure: block until the flusher drains (or the deadline hits).
      bool expired = false;
      while (!stop_ && pending_.size() >= options_.max_pending_pairs) {
        if (deadline.has_value()) {
          if (space_cv_.wait_until(lock, *deadline) ==
                  std::cv_status::timeout &&
              pending_.size() >= options_.max_pending_pairs) {
            expired = true;
            break;
          }
        } else {
          space_cv_.wait(lock);
        }
      }
      if (expired) {
        ++counters_.deadline_expirations;
        statuses[k] = Status::DeadlineExceeded(
            "coalescer backpressure outlasted the resolve deadline");
        continue;
      }
      if (stop_) {
        statuses[k] = Status::FailedPrecondition(
            "coalescer is shutting down; pair not accepted");
        continue;
      }
      auto entry = std::make_shared<Pending>();
      entry->enqueued_at = std::chrono::steady_clock::now();
      if (waiter_telemetry != nullptr) {
        entry->waiters.push_back(waiter_telemetry);
      }
      pending_.emplace(key, entry);
      queue_.push_back(key);
      enqueued_fresh = true;
      ++submitted;
      local.emplace(key, entry);
      waits.push_back({k, entry});
    }
    submit_span.set_count(submitted);
  }
  if (enqueued_fresh) work_cv_.notify_one();

  {
    // Spans the wait for the round-trip(s); linked to the batch_ship span
    // that carried the first of this caller's pairs, so the cross-session
    // trip is reachable from every waiter's trace.
    ScopedSpan rtt_span(waiter_telemetry, "oracle_rtt", waits.size());
    uint64_t link = 0;
    for (const Wait& wait : waits) {
      bool expired = false;
      while (!wait.entry->done) {
        if (deadline.has_value()) {
          if (done_cv_.wait_until(lock, *deadline) ==
                  std::cv_status::timeout &&
              !wait.entry->done) {
            expired = true;
            break;
          }
        } else {
          done_cv_.wait(lock);
        }
      }
      if (link == 0) link = wait.entry->ship_span_id;
      if (expired) {
        // Only this waiter gives up: the pair stays pending, still ships,
        // and every other waiter still receives its result.
        ++counters_.deadline_expirations;
        statuses[wait.index] = Status::DeadlineExceeded(
            "pair did not resolve before the session deadline");
        continue;
      }
      out[wait.index] = wait.entry->result;
      statuses[wait.index] = wait.entry->status;
    }
    rtt_span.set_link(link);
  }

  --active_resolves_;
  if (active_resolves_ == 0) idle_cv_.notify_all();
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

size_t BatchCoalescer::FlushNow() {
  std::unique_lock<std::mutex> lock(mu_);
  size_t shipped = 0;
  while (!queue_.empty()) shipped += ShipOneBatch(lock);
  return shipped;
}

size_t BatchCoalescer::PendingPairs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

double BatchCoalescer::OldestPendingSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return 0.0;
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (const auto& [key, entry] : pending_) {
    oldest = std::min(oldest, entry->enqueued_at);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       oldest)
      .count();
}

CoalescerCounters BatchCoalescer::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void BatchCoalescer::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    if (!stop_) {
      // Linger: hold the batch open for the window (or until it fills) so
      // concurrent sessions' pairs coalesce into this round-trip.
      const auto flush_at =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.linger_seconds));
      while (!stop_ && queue_.size() < options_.max_batch_pairs) {
        if (work_cv_.wait_until(lock, flush_at) == std::cv_status::timeout) {
          break;
        }
      }
    }
    ShipOneBatch(lock);
  }
}

size_t BatchCoalescer::ShipOneBatch(std::unique_lock<std::mutex>& lock) {
  const size_t take = std::min(queue_.size(), options_.max_batch_pairs);
  if (take == 0) return 0;
  std::vector<EdgeKey> keys(queue_.begin(),
                            queue_.begin() + static_cast<ptrdiff_t>(take));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(take));
  std::vector<Entry> entries;
  entries.reserve(take);
  std::vector<IdPair> ship;
  ship.reserve(take);
  for (const EdgeKey key : keys) {
    auto it = pending_.find(key);
    CHECK(it != pending_.end());
    entries.push_back(it->second);
    ship.push_back(IdPair{key.lo(), key.hi()});
  }
  counters_.batches_shipped += 1;
  counters_.pairs_shipped += take;
  // The flusher-side span for this round-trip; its id is recorded on every
  // entry (still under mu_, so waiters observing `done` also observe it)
  // and every distinct waiter bundle becomes a fan-out target, so the
  // middleware events of this ship land in each waiter's session trace.
  ScopedSpan ship_span(telemetry_, "batch_ship", take);
  std::vector<FanoutTarget> fanout;
  for (const Entry& entry : entries) {
    entry->ship_span_id = ship_span.id();
    for (Telemetry* waiter : entry->waiters) {
      bool known = false;
      for (const FanoutTarget& target : fanout) {
        if (target.telemetry == waiter) {
          known = true;
          break;
        }
      }
      if (!known) fanout.push_back(FanoutTarget{waiter, ship_span.id()});
    }
  }
  // The oracle round-trip happens outside mu_ so submitters can keep
  // queueing the next batch; ship_mu_ serializes the base call itself, so
  // even a FlushNow racing the flusher thread keeps the single-threaded
  // guarantee the fault/retry middleware underneath relies on.
  lock.unlock();
  std::vector<double> results(take, 0.0);
  std::vector<Status> statuses(take, Status::OK());
  {
    std::lock_guard<std::mutex> ship_lock(ship_mu_);
    ScopedFanout fan(&fanout);
    base_->TryBatchDistance(ship, results, statuses);
  }
  lock.lock();
  for (size_t k = 0; k < take; ++k) {
    entries[k]->result = results[k];
    entries[k]->status = statuses[k];
    entries[k]->done = true;
    pending_.erase(keys[k]);
  }
  done_cv_.notify_all();
  space_cv_.notify_all();
  return take;
}

}  // namespace metricprox
