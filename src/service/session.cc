#include "service/session.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "bounds/tri.h"
#include "core/logging.h"
#include "obs/hub.h"
#include "obs/span.h"
#include "obs/telemetry.h"

namespace metricprox {

namespace internal {

BatchCoalescer::Deadline SessionOracle::MakeDeadline() const {
  if (deadline_seconds_ <= 0.0) return {};
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(deadline_seconds_));
}

StatusOr<double> SessionOracle::TryDistance(ObjectId i, ObjectId j) {
  const IdPair pair{i, j};
  double out = 0.0;
  Status status;
  const Status first =
      pool_->ResolvePairs(std::span<const IdPair>(&pair, 1),
                          std::span<double>(&out, 1),
                          std::span<Status>(&status, 1), MakeDeadline(),
                          &shared_hits_, telemetry_);
  if (!first.ok()) return first;
  return out;
}

Status SessionOracle::TryBatchDistance(std::span<const IdPair> pairs,
                                       std::span<double> out,
                                       std::span<Status> statuses) {
  return pool_->ResolvePairs(pairs, out, statuses, MakeDeadline(),
                             &shared_hits_, telemetry_);
}

double SessionOracle::Distance(ObjectId i, ObjectId j) {
  StatusOr<double> resolved = TryDistance(i, j);
  CHECK(resolved.ok()) << "session resolution failed outside a fallible "
                          "scope: "
                       << resolved.status().message();
  return resolved.value();
}

void SessionOracle::BatchDistance(std::span<const IdPair> pairs,
                                  std::span<double> out) {
  std::vector<Status> statuses(pairs.size());
  const Status status = TryBatchDistance(pairs, out, statuses);
  CHECK(status.ok()) << "session batch resolution failed outside a "
                        "fallible scope: "
                     << status.message();
}

ObjectId SessionOracle::num_objects() const { return pool_->num_objects(); }

void SessionOracle::set_batch_workers(unsigned workers) {
  pool_->base_oracle().set_batch_workers(workers);
}

unsigned SessionOracle::batch_workers() const {
  return pool_->base_oracle().batch_workers();
}

}  // namespace internal

ResolverSession::ResolverSession(SessionPool* pool, SessionOptions options)
    : pool_(pool),
      options_(std::move(options)),
      graph_(pool->num_objects()),
      oracle_(pool, options_.deadline_seconds),
      resolver_(&oracle_, &graph_) {}

ResolverSession::~ResolverSession() { pool_->CloseSession(); }

void ResolverSession::UseTriBounds(double rho) {
  bounder_ = std::make_unique<TriBounder>(&graph_, rho);
  resolver_.SetBounder(bounder_.get());
}

ResolverStats ResolverSession::Stats() const {
  ResolverStats stats = resolver_.stats();
  stats.shared_graph_hits += oracle_.shared_hits();
  return stats;
}

StoreFingerprint ResolverSession::Fingerprint(std::string_view identity) const {
  return pool_->TenantFingerprint(identity);
}

SessionPool::SessionPool(DistanceOracle* base,
                         const SessionPoolOptions& options)
    : base_(base),
      options_(options),
      graph_(base->num_objects(), options.graph_shards) {
  CHECK(base != nullptr);
  if (options_.store != nullptr) {
    CHECK_EQ(options_.store->fingerprint().num_objects, base->num_objects())
        << "attached store was fingerprinted for a different universe";
  }
  if (options_.enable_coalescer) {
    coalescer_ = std::make_unique<BatchCoalescer>(base, options_.coalescer);
  }
  if (options_.hub != nullptr) {
    ObservabilityHub* hub = options_.hub;
    if (coalescer_ != nullptr) {
      coalescer_->SetTelemetry(hub->pool_telemetry());
      hub->SetStallProbe(options_.coalescer.linger_seconds,
                         [c = coalescer_.get()] {
                           return c->OldestPendingSeconds();
                         });
      hub->AddGaugeProbe(this, options_.tenant, 0, "coalescer_queue_depth",
                         [c = coalescer_.get()] {
                           return static_cast<double>(c->PendingPairs());
                         });
    }
    hub->AddGaugeProbe(this, options_.tenant, 0, "sessions_active", [this] {
      return static_cast<double>(counters().sessions_active);
    });
    hub->AddGaugeProbe(this, options_.tenant, 0, "shared_graph_hit_rate",
                       [this] {
                         const SessionPoolCounters c = counters();
                         const uint64_t asked = c.shared_graph_hits +
                                                c.store_hits +
                                                c.base_pairs_shipped;
                         if (asked == 0) return 0.0;
                         return static_cast<double>(c.shared_graph_hits) /
                                static_cast<double>(asked);
                       });
  }
}

SessionPool::~SessionPool() {
  if (options_.hub != nullptr) {
    options_.hub->RemoveGaugeProbes(this);
    if (coalescer_ != nullptr) options_.hub->ClearStallProbe();
  }
}

std::unique_ptr<ResolverSession> SessionPool::OpenSession(
    SessionOptions options) {
  uint64_t session_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.sessions_opened;
    ++counters_.sessions_active;
    counters_.sessions_peak =
        std::max(counters_.sessions_peak, counters_.sessions_active);
    session_id = counters_.sessions_opened;
  }
  auto session = std::unique_ptr<ResolverSession>(
      new ResolverSession(this, std::move(options)));
  session->session_id_ = session_id;
  if (options_.hub != nullptr) {
    Telemetry* telemetry =
        options_.hub->SessionTelemetry(session_id, options_.tenant);
    session->oracle_.SetTelemetry(telemetry);
    session->resolver_.SetTelemetry(telemetry);
  }
  return session;
}

void SessionPool::CloseSession() {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK_GT(counters_.sessions_active, 0u);
  --counters_.sessions_active;
}

SessionPoolCounters SessionPool::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

StoreFingerprint SessionPool::TenantFingerprint(
    std::string_view identity) const {
  std::string namespaced = "tenant=" + options_.tenant + ";";
  namespaced.append(identity);
  return MakeStoreFingerprint(namespaced, num_objects());
}

void SessionPool::AccumulateStats(ResolverStats* total) const {
  CHECK(total != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  total->sessions_active += counters_.sessions_peak;
  if (coalescer_ != nullptr) {
    const CoalescerCounters c = coalescer_->counters();
    total->coalesced_batches += c.batches_shipped;
    total->cross_session_dedup_hits += c.dedup_hits;
  }
}

Status SessionPool::ResolvePairs(std::span<const IdPair> pairs,
                                 std::span<double> out,
                                 std::span<Status> statuses,
                                 BatchCoalescer::Deadline deadline,
                                 uint64_t* shared_hits,
                                 Telemetry* telemetry) {
  CHECK_EQ(pairs.size(), out.size());
  CHECK_EQ(pairs.size(), statuses.size());

  // Sweep 1: the shared graph — lock-striped point lookups, no
  // serialization with other sessions beyond one shard mutex each.
  std::vector<size_t> miss;
  uint64_t graph_hits = 0;
  for (size_t k = 0; k < pairs.size(); ++k) {
    statuses[k] = Status::OK();
    if (pairs[k].i == pairs[k].j) {
      out[k] = 0.0;
      continue;
    }
    if (const std::optional<double> d = graph_.Get(pairs[k].i, pairs[k].j)) {
      out[k] = *d;
      ++graph_hits;
      continue;
    }
    miss.push_back(k);
  }

  // Sweep 2: the durable store (serialized — DistanceStore is
  // single-threaded by contract). Store hits are published to the shared
  // graph so the next asker stops at sweep 1.
  uint64_t store_hits = 0;
  if (options_.store != nullptr && !miss.empty()) {
    std::vector<size_t> still_missing;
    still_missing.reserve(miss.size());
    std::lock_guard<std::mutex> lock(mu_);
    for (const size_t k : miss) {
      const std::optional<double> d =
          options_.store->Lookup(pairs[k].i, pairs[k].j);
      if (!d.has_value()) {
        still_missing.push_back(k);
        continue;
      }
      out[k] = *d;
      ++store_hits;
      graph_.Insert(pairs[k].i, pairs[k].j, *d);
    }
    miss = std::move(still_missing);
  }

  // Sweep 3: the base oracle stack — one coalesced cross-session batch, or
  // a serialized direct round-trip.
  const size_t shipped = miss.size();
  if (!miss.empty()) {
    std::vector<IdPair> ship;
    ship.reserve(miss.size());
    for (const size_t k : miss) ship.push_back(pairs[k]);
    std::vector<double> results(miss.size(), 0.0);
    std::vector<Status> ship_statuses(miss.size(), Status::OK());
    if (coalescer_ != nullptr) {
      coalescer_->Resolve(ship, results, ship_statuses, deadline, telemetry);
    } else {
      // The direct path's round-trip span, mirroring the coalesced path's
      // oracle_rtt so per-session attribution does not depend on which
      // transport the pool uses.
      ScopedSpan rtt_span(telemetry, "oracle_rtt", ship.size());
      std::lock_guard<std::mutex> lock(base_mu_);
      base_->TryBatchDistance(ship, results, ship_statuses);
    }
    for (size_t k = 0; k < miss.size(); ++k) {
      statuses[miss[k]] = ship_statuses[k];
      if (!ship_statuses[k].ok()) continue;
      out[miss[k]] = results[k];
      // A racing session may have published the same pair meanwhile;
      // Insert returning false (exact duplicate) is the expected benign
      // outcome of that race.
      graph_.Insert(ship[k].i, ship[k].j, results[k]);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.shared_graph_hits += graph_hits;
    counters_.store_hits += store_hits;
    counters_.base_pairs_shipped += shipped;
    if (options_.store != nullptr && !options_.store->read_only()) {
      for (const size_t k : miss) {
        if (!statuses[k].ok()) continue;
        const Status recorded =
            options_.store->Record(pairs[k].i, pairs[k].j, out[k]);
        CHECK(recorded.ok()) << "store append failed: " << recorded.message();
      }
    }
  }
  if (shared_hits != nullptr) *shared_hits += graph_hits;

  if (options_.hub != nullptr && telemetry != nullptr) {
    MetricsRegistry& metrics = options_.hub->metrics();
    const std::string& tenant = options_.tenant;
    const uint64_t session = telemetry->session_id;
    if (graph_hits > 0) {
      metrics.CounterAdd(tenant, session, "shared_graph_hits", graph_hits);
    }
    if (store_hits > 0) {
      metrics.CounterAdd(tenant, session, "store_hits", store_hits);
    }
    if (shipped > 0) {
      metrics.CounterAdd(tenant, session, "base_pairs_shipped", shipped);
    }
  }

  Status first;
  for (const Status& status : statuses) {
    if (!status.ok()) {
      first = status;
      break;
    }
  }
  if (!first.ok() && options_.hub != nullptr &&
      (first.code() == StatusCode::kResourceExhausted ||
       first.code() == StatusCode::kDeadlineExceeded)) {
    // The pool is in trouble (budget gone or waiters timing out): freeze
    // the black box now, while the evidence is still in the ring.
    (void)options_.hub->DumpFlight(StatusCodeToString(first.code()));
  }
  return first;
}

}  // namespace metricprox
