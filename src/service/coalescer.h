#ifndef METRICPROX_SERVICE_COALESCER_H_
#define METRICPROX_SERVICE_COALESCER_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/oracle.h"
#include "core/status.h"
#include "core/types.h"

namespace metricprox {

struct Telemetry;

struct CoalescerOptions {
  /// Linger window: after the first pair of a batch arrives, the flusher
  /// waits up to this long for more pairs before shipping. This is the
  /// paper's amortization argument applied ACROSS sessions — a short wait
  /// lets pending resolutions from concurrent sessions ride one
  /// BatchDistance round-trip.
  double linger_seconds = 0.0005;
  /// Ship as soon as this many distinct pairs are pending, even inside the
  /// linger window (bounds per-round-trip size and tail latency).
  size_t max_batch_pairs = 256;
  /// Backpressure: a submitter whose fresh pair would push the pending set
  /// past this cap blocks (deadline-aware) until the flusher drains.
  size_t max_pending_pairs = 4096;
  /// With true, no flusher thread is started: nothing ships until
  /// FlushNow() is called. Gives tests deterministic control over the
  /// window (submit from N threads, then flush exactly once).
  bool manual_flush = false;
};

/// Counters of one coalescer (monotone over its lifetime).
struct CoalescerCounters {
  /// BatchDistance round-trips shipped to the base oracle.
  uint64_t batches_shipped = 0;
  /// Distinct pairs shipped across those batches.
  uint64_t pairs_shipped = 0;
  /// Resolutions that joined a pair already pending from another submission
  /// instead of shipping it again (the cross-session dedup win).
  uint64_t dedup_hits = 0;
  /// Per-pair waits that gave up at their deadline (the pair still ships;
  /// only the expired waiter sees kDeadlineExceeded).
  uint64_t deadline_expirations = 0;
};

/// Cross-session batch coalescer: concurrent sessions submit unresolved
/// (i, j) pairs, symmetric duplicates are deduplicated ACROSS sessions
/// against the pending set, and the flusher ships the union as one
/// BatchDistance call per linger window, fanning each result back to every
/// waiter.
///
/// Threading contract: Resolve() is safe from any number of threads; the
/// base oracle's verbs are only ever invoked from one thread at a time (the
/// flusher thread, or the FlushNow() caller in manual mode), so
/// single-threaded middleware — FaultInjectingOracle bookkeeping,
/// RetryingOracle backoff state — works unmodified underneath. Failures
/// surface per pair through the existing Status machinery: a waiter sees
/// exactly the per-pair Status of the round-trip that resolved its pair.
///
/// The coalescer is not a cache: once a pair's result has been fanned out,
/// the pair leaves the pending set, and a later submission ships it again.
/// Cross-run memoization belongs to the shared graph / DistanceStore layers
/// above (see service/session.h).
class BatchCoalescer {
 public:
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  BatchCoalescer(DistanceOracle* base, const CoalescerOptions& options = {});

  /// Drains and ships every still-pending pair (so no waiter is left
  /// hanging), joins the flusher, and blocks until every in-flight
  /// Resolve() has returned — destruction is safe while waiters are still
  /// being released.
  ~BatchCoalescer();

  BatchCoalescer(const BatchCoalescer&) = delete;
  BatchCoalescer& operator=(const BatchCoalescer&) = delete;

  /// Resolves every pair: out[k] is meaningful iff statuses[k].ok().
  /// Blocks until each pair's batch returns or `deadline` passes; at the
  /// deadline the unfinished pairs get kDeadlineExceeded — for this caller
  /// only. A pair equal (as an unordered EdgeKey) to one already pending
  /// joins it instead of shipping twice; i == j yields 0 without shipping.
  /// Returns the first non-OK per-pair status, or OK.
  ///
  /// `waiter_telemetry` (optional, session-tagged) attributes the trip:
  /// the submission emits a coalesce_submit span whose count is the
  /// fresh-enqueued + cross-session-joined pairs (so summed over every
  /// submitter it reconciles with pairs_shipped + dedup_hits), each join
  /// emits a coalesce_dedup event, the wait emits an oracle_rtt span
  /// linked to the batch_ship span that carried this caller's pairs, and
  /// middleware events during that ship are mirrored to this bundle.
  Status Resolve(std::span<const IdPair> pairs, std::span<double> out,
                 std::span<Status> statuses, Deadline deadline = {},
                 Telemetry* waiter_telemetry = nullptr);

  /// Ships every currently-pending pair now (all of it, looping batches of
  /// max_batch_pairs). The manual-flush driver; also usable alongside the
  /// flusher thread to force an early flush. Returns pairs shipped.
  size_t FlushNow();

  /// Pairs currently pending (enqueued or in flight).
  size_t PendingPairs() const;

  /// How long the oldest still-pending pair has been waiting, in seconds
  /// (0 when idle). The observability hub's stall watchdog polls this.
  double OldestPendingSeconds() const;

  /// Attaches the pool-level telemetry bundle used for the flusher-side
  /// batch_ship spans. Call before the first Resolve; not owned.
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  CoalescerCounters counters() const;

 private:
  /// One pending pair: shared by every waiter that joined it. Everything
  /// below is guarded by mu_.
  struct Pending {
    double result = 0.0;
    Status status;
    bool done = false;
    /// When the pair entered the pending set (watchdog's stall signal).
    std::chrono::steady_clock::time_point enqueued_at;
    /// batch_ship span that carried (or is carrying) this pair; 0 until
    /// a batch takes it, and forever 0 when the pool is untraced.
    uint64_t ship_span_id = 0;
    /// Session bundles waiting on this pair — the ship's fan-out targets.
    std::vector<Telemetry*> waiters;
  };
  using Entry = std::shared_ptr<Pending>;

  void FlusherLoop();

  /// Ships up to max_batch_pairs queued pairs through the base oracle
  /// (dropping mu_ around the call), marks the entries done and notifies.
  /// Requires mu_ held; returns the number of pairs shipped.
  size_t ShipOneBatch(std::unique_lock<std::mutex>& lock);

  DistanceOracle* base_;  // not owned
  CoalescerOptions options_;
  Telemetry* telemetry_ = nullptr;  // not owned; flusher-side spans

  /// Serializes the base-oracle round-trip itself (taken without mu_ held):
  /// FlushNow racing the flusher drains disjoint queue slices, but the base
  /// oracle must still see one call at a time.
  std::mutex ship_mu_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // flusher: pairs queued or stopping
  std::condition_variable done_cv_;   // waiters: some batch completed
  std::condition_variable space_cv_;  // submitters: pending set drained
  std::condition_variable idle_cv_;   // destructor: all Resolves returned
  std::unordered_map<EdgeKey, Entry, EdgeKeyHash> pending_;
  std::vector<EdgeKey> queue_;  // pending pairs not yet taken by a batch
  CoalescerCounters counters_;
  size_t active_resolves_ = 0;
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace metricprox

#endif  // METRICPROX_SERVICE_COALESCER_H_
