#ifndef METRICPROX_SERVICE_SESSION_H_
#define METRICPROX_SERVICE_SESSION_H_

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

#include "bounds/resolver.h"
#include "core/oracle.h"
#include "core/stats.h"
#include "core/status.h"
#include "core/types.h"
#include "graph/concurrent_graph.h"
#include "graph/partial_graph.h"
#include "service/coalescer.h"
#include "store/distance_store.h"

namespace metricprox {

class ObservabilityHub;
class ResolverSession;
class SessionPool;
struct Telemetry;

/// Per-session knobs, fixed at OpenSession().
struct SessionOptions {
  /// Label carried into reports ("tenant-a/knn", "replica-3", ...).
  std::string tag;
  /// Per-resolve deadline: each oracle verb issued by this session must
  /// complete within this many seconds or the affected pairs come back as
  /// kDeadlineExceeded (surfaced through the resolver's RunFallible
  /// machinery). 0 disables the deadline. Only waits — coalescer linger and
  /// backpressure — are interruptible; an in-flight base round-trip is not.
  double deadline_seconds = 0.0;
};

/// Pool-wide configuration, fixed at construction.
struct SessionPoolOptions {
  /// Lock stripes of the shared ConcurrentDistanceGraph.
  size_t graph_shards = ConcurrentDistanceGraph::kDefaultShards;
  /// Ship unresolved pairs through a cross-session BatchCoalescer (one
  /// BatchDistance per linger window across all sessions) instead of a
  /// serialized per-session call.
  bool enable_coalescer = false;
  CoalescerOptions coalescer;
  /// Optional durable cache consulted between the shared graph and the base
  /// oracle, and fed every base resolution. Not owned; the pool serializes
  /// access (DistanceStore itself is single-threaded).
  DistanceStore* store = nullptr;
  /// Tenant namespace prepended to every session fingerprint identity, so
  /// two tenants' stores over the same dataset can never validate against
  /// each other (see TenantFingerprint).
  std::string tenant = "default";
  /// Optional live observability hub (see obs/hub.h). Not owned; must
  /// outlive the pool. When set, every opened session gets a
  /// session-tagged Telemetry bundle (causal spans, shared trace clock),
  /// the coalescer's ship spans and stall watchdog wire up, pool gauges
  /// (sessions active, coalescer queue depth, shared-graph hit rate) are
  /// sampled into the hub's MetricsRegistry, and kResourceExhausted /
  /// kDeadlineExceeded resolutions trigger flight-recorder dumps.
  ObservabilityHub* hub = nullptr;
};

/// Monotone counters of one pool (gauges noted explicitly).
struct SessionPoolCounters {
  uint64_t sessions_opened = 0;
  /// Gauge: sessions currently open.
  uint64_t sessions_active = 0;
  /// High-water mark of sessions_active — what AccumulateStats reports as
  /// the run's `sessions_active` stat.
  uint64_t sessions_peak = 0;
  /// Pairs answered from the shared graph (another session already paid).
  uint64_t shared_graph_hits = 0;
  /// Pairs answered from the attached DistanceStore.
  uint64_t store_hits = 0;
  /// Pairs this pool submitted toward the base oracle stack (neither the
  /// shared graph nor the store had them). On the direct path each one is
  /// a base-oracle pair; under coalescing, cross-session dedup may collapse
  /// several submissions into one shipped pair (CoalescerCounters::
  /// pairs_shipped counts what actually went over the wire).
  uint64_t base_pairs_shipped = 0;
};

namespace internal {

/// The per-session oracle facade: what a session's BoundedResolver sees as
/// "the oracle". Routes the resolver's two transport verbs (TryDistance,
/// TryBatchDistance) through SessionPool::ResolvePairs, which answers each
/// pair from the shared graph, then the store, and only then the base
/// oracle stack — so a pair any session has resolved is never paid for
/// twice pool-wide, while the resolver's own accounting (oracle_calls per
/// shipped pair) stays byte-identical to an unshared run.
///
/// Single-threaded like every resolver-facing oracle: one SessionOracle
/// belongs to one session and is driven by that session's thread only. The
/// pool supplies all cross-session synchronization.
class SessionOracle : public DistanceOracle {
 public:
  SessionOracle(SessionPool* pool, double deadline_seconds)
      : pool_(pool), deadline_seconds_(deadline_seconds) {}

  double Distance(ObjectId i, ObjectId j) override;
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override;
  StatusOr<double> TryDistance(ObjectId i, ObjectId j) override;
  Status TryBatchDistance(std::span<const IdPair> pairs, std::span<double> out,
                          std::span<Status> statuses) override;

  ObjectId num_objects() const override;
  std::string_view name() const override { return "session"; }
  void set_batch_workers(unsigned workers) override;
  unsigned batch_workers() const override;

  /// Pairs this session was handed from the shared graph (each one still
  /// counted in the resolver's oracle_calls, exactly like a store hit in a
  /// warm single-session run). Schedule-dependent under concurrency.
  uint64_t shared_hits() const { return shared_hits_; }

  /// Session-tagged bundle the pool's resolution funnel attributes spans
  /// and metrics to; set by OpenSession when the pool carries a hub.
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }
  Telemetry* telemetry() const { return telemetry_; }

 private:
  BatchCoalescer::Deadline MakeDeadline() const;

  SessionPool* pool_;  // not owned
  double deadline_seconds_;
  uint64_t shared_hits_ = 0;
  Telemetry* telemetry_ = nullptr;  // not owned
};

}  // namespace internal

/// One tenant-facing resolution session: a private single-threaded
/// PartialDistanceGraph + BoundedResolver pair (so bound decisions and
/// per-session counters are deterministic, independent of sibling-session
/// scheduling) whose oracle is the pool's shared data plane. Obtained from
/// SessionPool::OpenSession; closing (destroying) it unregisters from the
/// pool. Drive each session from one thread; different sessions may run
/// concurrently.
class ResolverSession {
 public:
  ~ResolverSession();

  ResolverSession(const ResolverSession&) = delete;
  ResolverSession& operator=(const ResolverSession&) = delete;

  /// The session's resolver: hand this to any proximity algorithm exactly
  /// as in single-session code. Policies, telemetry, batch transport and
  /// custom bounders attach here per session.
  BoundedResolver& resolver() { return resolver_; }

  /// The session-private resolved-distance cache the resolver reads.
  PartialDistanceGraph& graph() { return graph_; }

  /// Attaches a session-owned TriBounder over the private graph (the
  /// recommended scheme; rho per bounds/tri.h).
  void UseTriBounds(double rho = 1.0);

  const std::string& tag() const { return options_.tag; }

  /// Pool-unique session number (1-based open order); 0 only before the
  /// pool assigns it. Tags this session's spans and metrics cells.
  uint64_t session_id() const { return session_id_; }

  /// Session-tagged telemetry bundle, or nullptr without a hub.
  Telemetry* telemetry() const { return oracle_.telemetry(); }

  /// This session's resolver counters with the session-layer fields filled
  /// in (shared_graph_hits; the pool-level fields are merged by
  /// SessionPool::AccumulateStats instead).
  ResolverStats Stats() const;

  uint64_t shared_graph_hits() const { return oracle_.shared_hits(); }

  /// Store fingerprint for this session's tenant namespace: identical
  /// identity strings from different tenants yield different fingerprints.
  StoreFingerprint Fingerprint(std::string_view identity) const;

 private:
  friend class SessionPool;
  ResolverSession(SessionPool* pool, SessionOptions options);

  SessionPool* pool_;  // not owned
  SessionOptions options_;
  uint64_t session_id_ = 0;
  PartialDistanceGraph graph_;
  internal::SessionOracle oracle_;
  BoundedResolver resolver_;
  std::unique_ptr<Bounder> bounder_;
};

/// Owner of the shared resolution plane: the striped ConcurrentDistanceGraph
/// every session publishes to, the (optional) DistanceStore, the (optional)
/// cross-session BatchCoalescer, and the base oracle stack. Sessions opened
/// here resolve concurrently; a pair any one of them pays for becomes a
/// shared-graph hit for all later askers.
///
/// Resolution order per pair: shared graph -> store -> base oracle stack
/// (coalesced across sessions when enabled, else serialized). Every base
/// resolution is published back to the shared graph and the store.
///
/// Thread safety: OpenSession / ResolvePairs / counters / AccumulateStats
/// are safe from any thread. The base oracle's verbs are only ever invoked
/// from one thread at a time (the pool's serialization mutex or the
/// coalescer's flusher), so existing single-threaded middleware stacks —
/// CountingOracle, FaultInjectingOracle, RetryingOracle — work unmodified.
class SessionPool {
 public:
  explicit SessionPool(DistanceOracle* base,
                       const SessionPoolOptions& options = {});
  /// Unhooks the pool's probes from the hub (when one was attached).
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Opens a session. The handle may outlive neither the pool nor the base
  /// oracle stack; destroy it to unregister.
  std::unique_ptr<ResolverSession> OpenSession(SessionOptions options = {});

  ObjectId num_objects() const { return graph_.num_objects(); }
  ConcurrentDistanceGraph& shared_graph() { return graph_; }
  const ConcurrentDistanceGraph& shared_graph() const { return graph_; }
  DistanceOracle& base_oracle() { return *base_; }
  /// Null unless enable_coalescer was set.
  BatchCoalescer* coalescer() { return coalescer_.get(); }

  SessionPoolCounters counters() const;

  /// Tenant-namespaced fingerprint: MakeStoreFingerprint over
  /// "tenant=<tenant>;<identity>", so the existing store-validation
  /// machinery keeps tenants' caches from cross-contaminating.
  StoreFingerprint TenantFingerprint(std::string_view identity) const;

  /// Merges the pool-level session stats into `total` for the run report:
  /// sessions_active (the peak gauge), coalesced_batches and
  /// cross_session_dedup_hits. Per-session fields (including
  /// shared_graph_hits) travel with each session's Stats() instead, so
  /// summing session stats and then calling this once yields a report that
  /// validate_telemetry.py accepts.
  void AccumulateStats(ResolverStats* total) const;

 private:
  friend class internal::SessionOracle;
  friend class ResolverSession;

  /// The shared resolution funnel (see class comment for the sweep order).
  /// `pairs` must satisfy the DistanceOracle batch contract (deduplicated,
  /// in range); i == j yields 0. OK entries are published to the shared
  /// graph and the store. `shared_hits`, when non-null, is incremented by
  /// the number of pairs answered from the shared graph. `telemetry`
  /// (session-tagged, may be null) attributes the sweep's spans, metrics
  /// and coalescer submission to the asking session. Returns the first
  /// non-OK per-pair status, or OK.
  Status ResolvePairs(std::span<const IdPair> pairs, std::span<double> out,
                      std::span<Status> statuses,
                      BatchCoalescer::Deadline deadline,
                      uint64_t* shared_hits, Telemetry* telemetry);

  void CloseSession();

  DistanceOracle* base_;  // not owned
  SessionPoolOptions options_;
  ConcurrentDistanceGraph graph_;
  std::unique_ptr<BatchCoalescer> coalescer_;

  /// Serializes direct (non-coalesced) base-oracle round-trips.
  std::mutex base_mu_;
  /// Guards the store (single-threaded by contract) and counters_.
  mutable std::mutex mu_;
  SessionPoolCounters counters_;
};

}  // namespace metricprox

#endif  // METRICPROX_SERVICE_SESSION_H_
