#include "bounds/pivots.h"

#include <cmath>
#include <random>

#include "core/logging.h"

namespace metricprox {

uint32_t DefaultNumLandmarks(ObjectId n) {
  uint32_t k = 1;
  while ((1ull << k) < n) ++k;  // ceil(log2(n))
  return k;
}

PivotTable SelectMaxMinPivots(ObjectId n, uint32_t k, const ResolveFn& resolve,
                              uint64_t seed) {
  CHECK_GE(n, 2u);
  CHECK_GE(k, 1u);
  if (k > n) k = n;

  PivotTable table(n, k);

  std::mt19937_64 rng(seed);
  ObjectId pivot = static_cast<ObjectId>(rng() % n);

  // min_to_chosen[o] = min distance from o to any already-chosen pivot.
  std::vector<double> min_to_chosen(n, kInfDistance);
  std::vector<bool> chosen(n, false);

  for (uint32_t round = 0; round < k; ++round) {
    chosen[pivot] = true;
    table.SetPivot(round, pivot);
    for (ObjectId o = 0; o < n; ++o) {
      if (o == pivot) continue;
      const double d = resolve(pivot, o);
      table.Set(round, o, d);
      if (d < min_to_chosen[o]) min_to_chosen[o] = d;
    }
    if (round + 1 == k) break;

    // Farthest-first: next pivot maximizes the min distance to chosen ones.
    ObjectId best = kInvalidObject;
    double best_gap = -1.0;
    for (ObjectId o = 0; o < n; ++o) {
      if (chosen[o]) continue;
      if (min_to_chosen[o] > best_gap) {
        best_gap = min_to_chosen[o];
        best = o;
      }
    }
    CHECK_NE(best, kInvalidObject);
    pivot = best;
  }
  return table;
}

}  // namespace metricprox
