#ifndef METRICPROX_BOUNDS_WEAK_H_
#define METRICPROX_BOUNDS_WEAK_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "core/bounder.h"
#include "core/types.h"
#include "oracle/weak_oracle.h"

namespace metricprox {

/// The weak oracle as a bound source: converts a weak answer `w` into the
/// certified interval [max(0, w - floor)/alpha, (w + floor)*alpha] — valid
/// whenever the weak oracle honors its advertised error model — so the
/// resolver can intersect it with the scheme's Tri/SPLUB/DFT bounds and
/// decide comparisons neither source could decide alone.
///
/// Estimates are memoized per pair (one WeakOracle evaluation per unique
/// pair, ever), which keeps the weak channel cheap and the intervals
/// stable across repeated queries of the same pair.
///
/// Violation detection: every resolution the resolver pays for is also a
/// free ground-truth sample. OnEdgeResolved checks the resolved distance
/// against the pair's memoized advertised interval; a miss latches
/// `violated()` with a human-readable detail, and the resolver escalates
/// it to a FailedPrecondition error instead of continuing on intervals
/// that no longer mean anything. (A weak oracle that lies *consistently
/// within* every observable bound is information-theoretically
/// undetectable; what this guarantees is that a violation is detectable
/// whenever any known fact contradicts it, and that detection fails the
/// run rather than corrupting an answer.)
class WeakBounder : public Bounder {
 public:
  /// `weak` is borrowed and must outlive the bounder.
  explicit WeakBounder(WeakOracle* weak);

  std::string_view name() const override { return "weak"; }

  /// The advertised interval for dist(i, j), from the memoized estimate.
  Interval Bounds(ObjectId i, ObjectId j) override;

  /// The advertised error model for dist(i, j) (memoizes like Bounds).
  WeakModel ModelFor(ObjectId i, ObjectId j);

  /// Cross-checks the resolved distance against the pair's advertised
  /// interval (no-op for pairs never estimated).
  void OnEdgeResolved(ObjectId i, ObjectId j, double d) override;

  /// True once any resolved distance fell outside its advertised interval.
  bool violated() const { return violated_; }
  const std::string& violation_detail() const { return violation_detail_; }

  uint64_t calls() const { return weak_->calls(); }

 private:
  WeakOracle* weak_;  // not owned
  std::unordered_map<uint64_t, double> estimates_;
  bool violated_ = false;
  std::string violation_detail_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_WEAK_H_
