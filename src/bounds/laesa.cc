#include "bounds/laesa.h"

namespace metricprox {

std::unique_ptr<LaesaBounder> LaesaBounder::Build(ObjectId n,
                                                  uint32_t num_pivots,
                                                  const ResolveFn& resolve,
                                                  uint64_t seed) {
  PivotTable table = SelectMaxMinPivots(n, num_pivots, resolve, seed);
  return std::make_unique<LaesaBounder>(std::move(table));
}

}  // namespace metricprox
