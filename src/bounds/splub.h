#ifndef METRICPROX_BOUNDS_SPLUB_H_
#define METRICPROX_BOUNDS_SPLUB_H_

#include <string_view>
#include <vector>

#include "core/bounder.h"
#include "core/types.h"
#include "graph/dijkstra.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// The paper's SPLUB (Algorithm 1): exact tightest bounds via shortest
/// paths over the resolved edges.
///
///   TUB(i, j) = sp(i, j)
///   TLB(i, j) = max over known edges (k, l) of
///                 max(d(k,l) - sp(i,k) - sp(l,j),
///                     d(k,l) - sp(j,k) - sp(l,i))
///
/// Each query runs two Dijkstras (O(m + n log n)) and one O(m) scan of the
/// known edges; the update problem is O(1) (the shared graph insertion).
/// Produces the same bounds as ADM (tested property) at a fraction of the
/// cost, but is still too slow to sit inside large proximity loops.
class SplubBounder : public Bounder {
 public:
  explicit SplubBounder(const PartialDistanceGraph* graph)
      : graph_(graph), dijkstra_(graph->num_objects()) {
    CHECK(graph != nullptr);
  }

  std::string_view name() const override { return "splub"; }

  Interval Bounds(ObjectId i, ObjectId j) override {
    // Memoized source row: a batched sweep (FilterLessThan, DecideBatch)
    // issues many queries sharing one left object against an unchanged
    // graph, and re-running that Dijkstra would dominate the sweep. Keyed
    // on (source, num_edges) so any resolution — scalar Insert or batch
    // InsertEdges — invalidates it; the reused row is bit-identical to a
    // fresh solve, so decisions are unaffected.
    if (cached_source_ != i || cached_edges_ != graph_->num_edges()) {
      dijkstra_.Solve(*graph_, i, &sp_i_);
      cached_source_ = i;
      cached_edges_ = graph_->num_edges();
    }
    dijkstra_.Solve(*graph_, j, &sp_j_);
    const double ub = sp_i_[j];

    double lb = 0.0;
    for (const WeightedEdge& e : graph_->edges()) {
      // Wrap the (i ... k)-(k,l)-(l ... j) path onto the known edge; the
      // residue is a lower bound (Equation 4). Both orientations count.
      const double via_uv = e.weight - sp_i_[e.u] - sp_j_[e.v];
      const double via_vu = e.weight - sp_i_[e.v] - sp_j_[e.u];
      if (via_uv > lb) lb = via_uv;
      if (via_vu > lb) lb = via_vu;
    }
    if (lb > ub) lb = ub;  // float-noise clamp; theory guarantees lb <= ub
    return Interval(lb, ub);
  }

  void OnEdgeResolved(ObjectId, ObjectId, double) override {}

 private:
  const PartialDistanceGraph* graph_;  // not owned
  DijkstraSolver dijkstra_;
  std::vector<double> sp_i_;
  std::vector<double> sp_j_;
  ObjectId cached_source_ = kInvalidObject;
  size_t cached_edges_ = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_SPLUB_H_
