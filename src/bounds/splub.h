#ifndef METRICPROX_BOUNDS_SPLUB_H_
#define METRICPROX_BOUNDS_SPLUB_H_

#include <algorithm>
#include <string_view>
#include <vector>

#include "check/certificate.h"
#include "core/bounder.h"
#include "core/types.h"
#include "graph/dijkstra.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// The paper's SPLUB (Algorithm 1): exact tightest bounds via shortest
/// paths over the resolved edges.
///
///   TUB(i, j) = sp(i, j)
///   TLB(i, j) = max over known edges (k, l) of
///                 max(d(k,l) - sp(i,k) - sp(l,j),
///                     d(k,l) - sp(j,k) - sp(l,i))
///
/// Each query runs two Dijkstras (O(m + n log n)) and one O(m) scan of the
/// known edges; the update problem is O(1) (the shared graph insertion).
/// Produces the same bounds as ADM (tested property) at a fraction of the
/// cost, but is still too slow to sit inside large proximity loops.
class SplubBounder : public Bounder {
 public:
  explicit SplubBounder(const PartialDistanceGraph* graph)
      : graph_(graph), dijkstra_(graph->num_objects()) {
    CHECK(graph != nullptr);
  }

  std::string_view name() const override { return "splub"; }

  Interval Bounds(ObjectId i, ObjectId j) override {
    // Memoized source row: a batched sweep (FilterLessThan, DecideBatch)
    // issues many queries sharing one left object against an unchanged
    // graph, and re-running that Dijkstra would dominate the sweep. Keyed
    // on (source, num_edges) so any resolution — scalar Insert or batch
    // InsertEdges — invalidates it; the reused row is bit-identical to a
    // fresh solve, so decisions are unaffected.
    if (cached_source_ != i || cached_edges_ != graph_->num_edges()) {
      dijkstra_.Solve(*graph_, i, &sp_i_);
      cached_source_ = i;
      cached_edges_ = graph_->num_edges();
    }
    dijkstra_.Solve(*graph_, j, &sp_j_);
    const double ub = sp_i_[j];

    double lb = 0.0;
    for (const WeightedEdge& e : graph_->edges()) {
      // Wrap the (i ... k)-(k,l)-(l ... j) path onto the known edge; the
      // residue is a lower bound (Equation 4). Both orientations count.
      const double via_uv = e.weight - sp_i_[e.u] - sp_j_[e.v];
      const double via_vu = e.weight - sp_i_[e.v] - sp_j_[e.u];
      if (via_uv > lb) lb = via_uv;
      if (via_vu > lb) lb = via_vu;
    }
    if (lb > ub) lb = ub;  // float-noise clamp; theory guarantees lb <= ub
    return Interval(lb, ub);
  }

  void OnEdgeResolved(ObjectId, ObjectId, double) override {}

  /// Re-runs the two Dijkstras with parent tracking into local buffers (the
  /// memoized source row is untouched, so auditing cannot change any later
  /// decision) and extracts the shortest-path tree paths as witnesses. The
  /// recomputed interval matches Bounds() bit-for-bit: the memoized row is
  /// itself bit-identical to a fresh solve.
  bool CertifyBounds(ObjectId i, ObjectId j,
                     BoundCertificate* cert) override {
    std::vector<double> spi, spj;
    std::vector<ObjectId> par_i, par_j;
    dijkstra_.Solve(*graph_, i, &spi, &par_i);
    dijkstra_.Solve(*graph_, j, &spj, &par_j);
    const double ub = spi[j];

    double lb = 0.0;
    ObjectId best_u = kInvalidObject;
    ObjectId best_v = kInvalidObject;
    for (const WeightedEdge& e : graph_->edges()) {
      const double via_uv = e.weight - spi[e.u] - spj[e.v];
      const double via_vu = e.weight - spi[e.v] - spj[e.u];
      if (via_uv > lb) {
        lb = via_uv;
        best_u = e.u;
        best_v = e.v;
      }
      if (via_vu > lb) {
        lb = via_vu;
        best_u = e.v;
        best_v = e.u;
      }
    }
    if (lb > ub) lb = ub;

    cert->kind = BoundCertificate::Kind::kInterval;
    cert->lb = lb;
    cert->ub = ub;
    cert->has_upper = ub < kInfDistance;
    if (cert->has_upper) {
      // Walk the source-i tree from j back to i, then reverse to i..j.
      cert->upper.nodes = TreeWalk(par_i, i, j);
      std::reverse(cert->upper.nodes.begin(), cert->upper.nodes.end());
      cert->upper.rho = 1.0;
    }
    cert->has_lower = best_u != kInvalidObject;
    if (cert->has_lower) {
      cert->lower.u = best_u;
      cert->lower.v = best_v;
      cert->lower.path_iu = TreeWalk(par_i, i, best_u);
      std::reverse(cert->lower.path_iu.begin(), cert->lower.path_iu.end());
      // The source-j tree walk best_v .. j is already in witness order.
      cert->lower.path_vj = TreeWalk(par_j, j, best_v);
      cert->lower.rho = 1.0;
    }
    return true;
  }

 private:
  /// Nodes from `from` up the shortest-path tree to `source`, inclusive,
  /// in walk order (from .. source).
  static std::vector<ObjectId> TreeWalk(const std::vector<ObjectId>& parent,
                                        ObjectId source, ObjectId from) {
    std::vector<ObjectId> path;
    for (ObjectId x = from; x != kInvalidObject; x = parent[x]) {
      path.push_back(x);
      if (x == source) break;
    }
    return path;
  }

  const PartialDistanceGraph* graph_;  // not owned
  DijkstraSolver dijkstra_;
  std::vector<double> sp_i_;
  std::vector<double> sp_j_;
  ObjectId cached_source_ = kInvalidObject;
  size_t cached_edges_ = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_SPLUB_H_
