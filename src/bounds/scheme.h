#ifndef METRICPROX_BOUNDS_SCHEME_H_
#define METRICPROX_BOUNDS_SCHEME_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "core/bounder.h"
#include "core/status.h"
#include "bounds/resolver.h"

namespace metricprox {

/// The bound schemes a proximity algorithm can be plugged with.
enum class SchemeKind {
  kNone,    // "without plug": every comparison calls the oracle
  kTri,     // Tri Scheme (Section 4.2)
  kSplub,   // SPLUB (Section 4.1)
  kAdm,         // ADM with query-time tightest LBs (Wang & Shasha 1990)
  kAdmClassic,  // ADM with classical incremental matrix updates
  kLaesa,   // LAESA baseline
  kTlaesa,  // TLAESA baseline
  kDft,     // Direct Feasibility Test (Section 2.2)
  kHybrid,  // Tri ∧ LAESA intersection (ablation; see bounds/hybrid.h)
};

std::string_view SchemeKindName(SchemeKind kind);
StatusOr<SchemeKind> ParseSchemeKind(std::string_view text);

/// Construction parameters shared by the schemes.
struct SchemeOptions {
  /// Landmarks for LAESA/TLAESA-leaning structures; 0 = ceil(log2(n)), the
  /// paper's default.
  uint32_t num_landmarks = 0;
  /// Upper bound on any true distance; required by DFT (the paper
  /// normalizes distances into [0, 1]).
  double max_distance = 1.0;
  /// TLAESA tree leaf size.
  uint32_t tlaesa_leaf_size = 16;
  /// Relaxed-triangle-inequality factor of the space (1 = true metric).
  /// Only the Tri Scheme supports rho > 1 (see bounds/tri.h); requesting
  /// any other scheme with rho > 1 is an InvalidArgument.
  double rho = 1.0;
  uint64_t seed = 42;
};

/// Builds the requested scheme and attaches it to the resolver. Any
/// construction-time oracle calls (LAESA/TLAESA tables) are routed through
/// `resolver->Distance` so they are charged to its stats and their edges
/// populate the shared graph. Returns the owning pointer; the caller keeps
/// it alive as long as the resolver uses it.
StatusOr<std::unique_ptr<Bounder>> MakeAndAttachScheme(
    SchemeKind kind, BoundedResolver* resolver, const SchemeOptions& options);

/// The paper's "Bootstrapping Tri Scheme through Landmarks": resolves a
/// max-min landmark table directly into the resolver's graph so triangle
/// bounds are informative from the first comparison. Returns the number of
/// oracle calls spent (the tables' "Bootstrap" column).
uint64_t BootstrapWithLandmarks(BoundedResolver* resolver,
                                uint32_t num_landmarks, uint64_t seed);

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_SCHEME_H_
