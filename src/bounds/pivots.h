#ifndef METRICPROX_BOUNDS_PIVOTS_H_
#define METRICPROX_BOUNDS_PIVOTS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/types.h"

namespace metricprox {

/// Function used to obtain an exact distance during scheme construction.
/// Implementations typically route through BoundedResolver::Distance so the
/// calls are charged to the experiment's oracle-call counter and the
/// resolved edges land in the shared partial graph.
using ResolveFn = std::function<double(ObjectId, ObjectId)>;

/// A landmark table: the exact distances between k pivots and all n
/// objects, stored as one flat row-major matrix with one row per *object*
/// and stride k — so ObjectRow(o) is the contiguous k-vector of o's pivot
/// distances that the dispatched pivot-scan kernel (core/simd.h) streams.
/// The whole table is a single allocation sized up front (the old
/// vector<vector> layout paid one heap block per pivot and scattered the
/// per-object reads across all of them).
class PivotTable {
 public:
  PivotTable() = default;

  /// An all-zero k x n table awaiting Set() calls (the shape is fixed here
  /// so construction can pre-reserve the one flat block).
  PivotTable(ObjectId num_objects, uint32_t num_pivots)
      : pivots_(num_pivots, kInvalidObject),
        flat_(static_cast<size_t>(num_objects) * num_pivots, 0.0),
        num_objects_(num_objects) {}

  uint32_t num_pivots() const {
    return static_cast<uint32_t>(pivots_.size());
  }
  ObjectId num_objects() const { return num_objects_; }
  /// Doubles between consecutive object rows (== num_pivots()).
  size_t stride() const { return pivots_.size(); }
  bool empty() const { return pivots_.empty(); }

  /// The object id serving as pivot p.
  ObjectId pivot(uint32_t p) const {
    DCHECK_LT(p, pivots_.size());
    return pivots_[p];
  }
  std::span<const ObjectId> pivots() const { return pivots_; }

  void SetPivot(uint32_t p, ObjectId id) {
    DCHECK_LT(p, pivots_.size());
    pivots_[p] = id;
  }

  /// Bounds-checked in debug builds (DCHECK): dist(pivot p, object o).
  double At(uint32_t p, ObjectId o) const {
    DCHECK_LT(p, pivots_.size());
    DCHECK_LT(o, num_objects_);
    return flat_[static_cast<size_t>(o) * stride() + p];
  }

  void Set(uint32_t p, ObjectId o, double d) {
    DCHECK_LT(p, pivots_.size());
    DCHECK_LT(o, num_objects_);
    flat_[static_cast<size_t>(o) * stride() + p] = d;
  }

  /// Object o's pivot distances as one contiguous row — the kernel operand.
  std::span<const double> ObjectRow(ObjectId o) const {
    DCHECK_LT(o, num_objects_);
    return std::span<const double>(
        flat_.data() + static_cast<size_t>(o) * stride(), stride());
  }

  /// The whole matrix, object-major (tests and serializers only).
  std::span<const double> flat() const { return flat_; }

 private:
  std::vector<ObjectId> pivots_;
  std::vector<double> flat_;  // flat_[o * stride() + p] = dist(pivot p, o)
  ObjectId num_objects_ = 0;
};

/// Greedy max-min (farthest-first) pivot selection as in LAESA's linear
/// preprocessing: the first pivot is seeded-random; each next pivot
/// maximizes its minimum distance to the already-chosen ones. Costs exactly
/// k * (n - 1) resolve calls minus pairs shared between pivots. The table
/// is built directly into its final flat layout — no per-round
/// allocations.
PivotTable SelectMaxMinPivots(ObjectId n, uint32_t k,
                              const ResolveFn& resolve, uint64_t seed);

/// The default landmark count used throughout the paper: ceil(log2(n)),
/// at least 1.
uint32_t DefaultNumLandmarks(ObjectId n);

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_PIVOTS_H_
