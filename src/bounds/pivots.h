#ifndef METRICPROX_BOUNDS_PIVOTS_H_
#define METRICPROX_BOUNDS_PIVOTS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.h"

namespace metricprox {

/// Function used to obtain an exact distance during scheme construction.
/// Implementations typically route through BoundedResolver::Distance so the
/// calls are charged to the experiment's oracle-call counter and the
/// resolved edges land in the shared partial graph.
using ResolveFn = std::function<double(ObjectId, ObjectId)>;

/// A landmark table: `dist[p][o]` is the exact distance between `pivots[p]`
/// and object `o`.
struct PivotTable {
  std::vector<ObjectId> pivots;
  std::vector<std::vector<double>> dist;
};

/// Greedy max-min (farthest-first) pivot selection as in LAESA's linear
/// preprocessing: the first pivot is seeded-random; each next pivot
/// maximizes its minimum distance to the already-chosen ones. Costs exactly
/// k * (n - 1) resolve calls minus pairs shared between pivots.
PivotTable SelectMaxMinPivots(ObjectId n, uint32_t k,
                              const ResolveFn& resolve, uint64_t seed);

/// The default landmark count used throughout the paper: ceil(log2(n)),
/// at least 1.
uint32_t DefaultNumLandmarks(ObjectId n);

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_PIVOTS_H_
