#include "bounds/dft.h"

#include "core/logging.h"

namespace metricprox {

MetricFeasibilitySystem& DftBounder::System() {
  if (!system_ || system_edges_ != graph_->num_edges()) {
    pivots_ += system_ ? system_->total_pivots() : 0;
    system_ = std::make_unique<MetricFeasibilitySystem>(*graph_,
                                                        max_distance_);
    system_edges_ = graph_->num_edges();
  }
  return *system_;
}

Interval DftBounder::Bounds(ObjectId i, ObjectId j) {
  StatusOr<Interval> bounds = System().LpBounds(i, j);
  CHECK(bounds.ok()) << bounds.status();
  return *bounds;
}

std::optional<bool> DftBounder::DecideLessThan(ObjectId i, ObjectId j,
                                               double t) {
  MetricFeasibilitySystem& system = System();
  // Can dist(i,j) >= t?  (x_ij >= t  <=>  -x_ij <= -t)
  StatusOr<bool> can_be_ge =
      system.FeasibleWith({DistanceTerm{i, j, -1.0}}, -t);
  CHECK(can_be_ge.ok()) << can_be_ge.status();
  if (!*can_be_ge) return true;  // every completion has dist < t
  // Can dist(i,j) <= t?
  StatusOr<bool> can_be_le =
      system.FeasibleWith({DistanceTerm{i, j, 1.0}}, t);
  CHECK(can_be_le.ok()) << can_be_le.status();
  if (!*can_be_le) return false;  // every completion has dist > t
  return std::nullopt;
}

std::optional<bool> DftBounder::DecideGreaterThan(ObjectId i, ObjectId j,
                                                  double t) {
  MetricFeasibilitySystem& system = System();
  // Can dist(i,j) <= t?
  StatusOr<bool> can_be_le =
      system.FeasibleWith({DistanceTerm{i, j, 1.0}}, t);
  CHECK(can_be_le.ok()) << can_be_le.status();
  if (!*can_be_le) return true;  // every completion has dist > t
  // Can dist(i,j) >= t?
  StatusOr<bool> can_be_ge =
      system.FeasibleWith({DistanceTerm{i, j, -1.0}}, -t);
  CHECK(can_be_ge.ok()) << can_be_ge.status();
  if (!*can_be_ge) return false;  // every completion has dist < t
  return std::nullopt;
}

std::optional<bool> DftBounder::DecidePairLess(ObjectId i, ObjectId j,
                                               ObjectId k, ObjectId l) {
  MetricFeasibilitySystem& system = System();
  // Can dist(i,j) >= dist(k,l)?  (x_kl - x_ij <= 0)
  StatusOr<bool> can_be_ge = system.FeasibleWith(
      {DistanceTerm{k, l, 1.0}, DistanceTerm{i, j, -1.0}}, 0.0);
  CHECK(can_be_ge.ok()) << can_be_ge.status();
  if (!*can_be_ge) return true;
  // Can dist(i,j) <= dist(k,l)?
  StatusOr<bool> can_be_le = system.FeasibleWith(
      {DistanceTerm{i, j, 1.0}, DistanceTerm{k, l, -1.0}}, 0.0);
  CHECK(can_be_le.ok()) << can_be_le.status();
  if (!*can_be_le) return false;
  return std::nullopt;
}

}  // namespace metricprox
