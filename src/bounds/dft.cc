#include "bounds/dft.h"

#include "check/certificate.h"
#include "core/logging.h"

namespace metricprox {

MetricFeasibilitySystem& DftBounder::System() {
  if (!system_ || system_edges_ != graph_->num_edges()) {
    pivots_ += system_ ? system_->total_pivots() : 0;
    system_ = std::make_unique<MetricFeasibilitySystem>(*graph_,
                                                        max_distance_);
    system_edges_ = graph_->num_edges();
  }
  return *system_;
}

Interval DftBounder::Bounds(ObjectId i, ObjectId j) {
  StatusOr<Interval> bounds = System().LpBounds(i, j);
  CHECK(bounds.ok()) << bounds.status();
  return *bounds;
}

std::optional<bool> DftBounder::DecideLessThan(ObjectId i, ObjectId j,
                                               double t) {
  return DecideLessThanCertified(i, j, t, nullptr);
}

std::optional<bool> DftBounder::DecideGreaterThan(ObjectId i, ObjectId j,
                                                  double t) {
  return DecideGreaterThanCertified(i, j, t, nullptr);
}

std::optional<bool> DftBounder::DecidePairLess(ObjectId i, ObjectId j,
                                               ObjectId k, ObjectId l) {
  return DecidePairLessCertified(i, j, k, l, nullptr);
}

std::optional<bool> DftBounder::DecideLessThanCertified(
    ObjectId i, ObjectId j, double t, BoundCertificate* cert) {
  MetricFeasibilitySystem& system = System();
  FarkasCertificate* farkas = cert != nullptr ? &cert->farkas : nullptr;
  // Can dist(i,j) >= t?  (x_ij >= t  <=>  -x_ij <= -t)
  StatusOr<bool> can_be_ge =
      system.FeasibleWith({DistanceTerm{i, j, -1.0}}, -t, farkas);
  CHECK(can_be_ge.ok()) << can_be_ge.status();
  if (!*can_be_ge) {  // every completion has dist < t
    if (cert != nullptr) cert->kind = BoundCertificate::Kind::kFarkas;
    return true;
  }
  // Can dist(i,j) <= t?
  StatusOr<bool> can_be_le =
      system.FeasibleWith({DistanceTerm{i, j, 1.0}}, t, farkas);
  CHECK(can_be_le.ok()) << can_be_le.status();
  if (!*can_be_le) {  // every completion has dist > t
    if (cert != nullptr) cert->kind = BoundCertificate::Kind::kFarkas;
    return false;
  }
  return std::nullopt;
}

std::optional<bool> DftBounder::DecideGreaterThanCertified(
    ObjectId i, ObjectId j, double t, BoundCertificate* cert) {
  MetricFeasibilitySystem& system = System();
  FarkasCertificate* farkas = cert != nullptr ? &cert->farkas : nullptr;
  // Can dist(i,j) <= t?
  StatusOr<bool> can_be_le =
      system.FeasibleWith({DistanceTerm{i, j, 1.0}}, t, farkas);
  CHECK(can_be_le.ok()) << can_be_le.status();
  if (!*can_be_le) {  // every completion has dist > t
    if (cert != nullptr) cert->kind = BoundCertificate::Kind::kFarkas;
    return true;
  }
  // Can dist(i,j) >= t?
  StatusOr<bool> can_be_ge =
      system.FeasibleWith({DistanceTerm{i, j, -1.0}}, -t, farkas);
  CHECK(can_be_ge.ok()) << can_be_ge.status();
  if (!*can_be_ge) {  // every completion has dist < t
    if (cert != nullptr) cert->kind = BoundCertificate::Kind::kFarkas;
    return false;
  }
  return std::nullopt;
}

std::optional<bool> DftBounder::DecidePairLessCertified(
    ObjectId i, ObjectId j, ObjectId k, ObjectId l, BoundCertificate* cert) {
  MetricFeasibilitySystem& system = System();
  FarkasCertificate* farkas = cert != nullptr ? &cert->farkas : nullptr;
  // Can dist(i,j) >= dist(k,l)?  (x_kl - x_ij <= 0)
  StatusOr<bool> can_be_ge = system.FeasibleWith(
      {DistanceTerm{k, l, 1.0}, DistanceTerm{i, j, -1.0}}, 0.0, farkas);
  CHECK(can_be_ge.ok()) << can_be_ge.status();
  if (!*can_be_ge) {
    if (cert != nullptr) cert->kind = BoundCertificate::Kind::kFarkas;
    return true;
  }
  // Can dist(i,j) <= dist(k,l)?
  StatusOr<bool> can_be_le = system.FeasibleWith(
      {DistanceTerm{i, j, 1.0}, DistanceTerm{k, l, -1.0}}, 0.0, farkas);
  CHECK(can_be_le.ok()) << can_be_le.status();
  if (!*can_be_le) {
    if (cert != nullptr) cert->kind = BoundCertificate::Kind::kFarkas;
    return false;
  }
  return std::nullopt;
}

}  // namespace metricprox
