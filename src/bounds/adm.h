#ifndef METRICPROX_BOUNDS_ADM_H_
#define METRICPROX_BOUNDS_ADM_H_

#include <string_view>
#include <vector>

#include "core/bounder.h"
#include "core/types.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// The ADM baseline (Wang & Shasha, "Query Processing for Distance
/// Metrics", VLDB 1990): exact bounds maintained in O(n^2) matrices.
///
/// We keep the all-pairs shortest-path (= tightest upper bound) matrix
/// incrementally: resolving (u, v) = d relaxes every pair through the new
/// edge in O(n^2). The tightest lower bound is evaluated at query time by
/// wrapping every known edge onto the exact UB matrix:
///     TLB(i, j) = max over known (k, l) of d(k,l) - UB(i,k) - UB(l,j)
/// which — given exact shortest-path UBs — equals SPLUB's TLB (a tested
/// property). Queries are O(m); updates O(n^2); memory O(n^2); total cubic,
/// matching the paper's characterization of ADM.
class AdmBounder : public Bounder {
 public:
  explicit AdmBounder(const PartialDistanceGraph* graph);

  std::string_view name() const override { return "adm"; }

  Interval Bounds(ObjectId i, ObjectId j) override;
  void OnEdgeResolved(ObjectId i, ObjectId j, double d) override;

  /// Current shortest-path upper bound (exposed for tests).
  double UpperBound(ObjectId i, ObjectId j) const {
    return i == j ? 0.0 : ub_[Index(i, j)];
  }

 private:
  size_t Index(ObjectId i, ObjectId j) const {
    return static_cast<size_t>(i) * n_ + j;
  }

  const PartialDistanceGraph* graph_;  // not owned
  ObjectId n_;
  std::vector<double> ub_;
  // Scratch copies of the u/v rows taken before an update pass.
  std::vector<double> row_u_;
  std::vector<double> row_v_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_ADM_H_
