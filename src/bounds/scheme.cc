#include "bounds/scheme.h"

#include "bounds/adm.h"
#include "bounds/adm_classic.h"
#include "bounds/dft.h"
#include "bounds/hybrid.h"
#include "bounds/laesa.h"
#include "bounds/pivots.h"
#include "bounds/splub.h"
#include "bounds/tlaesa.h"
#include "bounds/tri.h"

namespace metricprox {

std::string_view SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNone:
      return "none";
    case SchemeKind::kTri:
      return "tri";
    case SchemeKind::kSplub:
      return "splub";
    case SchemeKind::kAdm:
      return "adm";
    case SchemeKind::kAdmClassic:
      return "adm-classic";
    case SchemeKind::kLaesa:
      return "laesa";
    case SchemeKind::kTlaesa:
      return "tlaesa";
    case SchemeKind::kDft:
      return "dft";
    case SchemeKind::kHybrid:
      return "tri+laesa";
  }
  return "unknown";
}

StatusOr<SchemeKind> ParseSchemeKind(std::string_view text) {
  for (SchemeKind kind :
       {SchemeKind::kNone, SchemeKind::kTri, SchemeKind::kSplub,
        SchemeKind::kAdm, SchemeKind::kAdmClassic, SchemeKind::kLaesa,
        SchemeKind::kTlaesa, SchemeKind::kDft, SchemeKind::kHybrid}) {
    if (text == SchemeKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown scheme: " + std::string(text));
}

StatusOr<std::unique_ptr<Bounder>> MakeAndAttachScheme(
    SchemeKind kind, BoundedResolver* resolver,
    const SchemeOptions& options) {
  if (resolver == nullptr) {
    return Status::InvalidArgument("resolver must not be null");
  }
  if (options.rho < 1.0) {
    return Status::InvalidArgument("rho must be >= 1");
  }
  if (options.rho > 1.0 && kind != SchemeKind::kTri &&
      kind != SchemeKind::kNone) {
    return Status::InvalidArgument(
        "only the Tri Scheme supports relaxed triangle inequalities");
  }
  const ObjectId n = resolver->num_objects();
  const ResolveFn resolve = [resolver](ObjectId a, ObjectId b) {
    return resolver->Distance(a, b);
  };
  const uint32_t landmarks = options.num_landmarks > 0
                                 ? options.num_landmarks
                                 : DefaultNumLandmarks(n);

  std::unique_ptr<Bounder> bounder;
  switch (kind) {
    case SchemeKind::kNone:
      bounder = std::make_unique<NullBounder>();
      break;
    case SchemeKind::kTri:
      bounder = std::make_unique<TriBounder>(&resolver->graph(), options.rho);
      break;
    case SchemeKind::kSplub:
      bounder = std::make_unique<SplubBounder>(&resolver->graph());
      break;
    case SchemeKind::kAdm:
      bounder = std::make_unique<AdmBounder>(&resolver->graph());
      break;
    case SchemeKind::kAdmClassic:
      bounder = std::make_unique<AdmClassicBounder>(&resolver->graph());
      break;
    case SchemeKind::kLaesa:
      bounder = LaesaBounder::Build(n, landmarks, resolve, options.seed);
      break;
    case SchemeKind::kTlaesa: {
      TlaesaBounder::Options tl;
      // TLAESA keeps LAESA's base prototypes and adds the hierarchy plus
      // the leaf-prototype matrix on top (strictly tighter bounds at extra
      // construction cost — whether that pays off is workload-dependent;
      // see EXPERIMENTS.md).
      tl.num_base_pivots = landmarks;
      tl.leaf_size = options.tlaesa_leaf_size;
      tl.seed = options.seed;
      bounder = TlaesaBounder::Build(n, tl, resolve);
      break;
    }
    case SchemeKind::kHybrid:
      bounder = std::make_unique<HybridBounder>(
          std::make_unique<TriBounder>(&resolver->graph()),
          LaesaBounder::Build(n, landmarks, resolve, options.seed));
      break;
    case SchemeKind::kDft:
      if (options.max_distance <= 0.0) {
        return Status::InvalidArgument("dft requires a positive max_distance");
      }
      bounder =
          std::make_unique<DftBounder>(&resolver->graph(), options.max_distance);
      break;
  }
  if (bounder == nullptr) {
    return Status::Internal("scheme construction failed");
  }
  resolver->SetBounder(bounder.get());
  return bounder;
}

uint64_t BootstrapWithLandmarks(BoundedResolver* resolver,
                                uint32_t num_landmarks, uint64_t seed) {
  CHECK(resolver != nullptr);
  const uint64_t before = resolver->stats().oracle_calls;
  const ResolveFn resolve = [resolver](ObjectId a, ObjectId b) {
    return resolver->Distance(a, b);
  };
  // The table itself is discarded: the resolved edges now live in the
  // partial graph, which is what Tri/SPLUB/ADM read.
  SelectMaxMinPivots(resolver->num_objects(), num_landmarks, resolve, seed);
  return resolver->stats().oracle_calls - before;
}

}  // namespace metricprox
