#include "bounds/adm_classic.h"

#include "core/logging.h"

namespace metricprox {

AdmClassicBounder::AdmClassicBounder(const PartialDistanceGraph* graph)
    : n_(graph->num_objects()) {
  CHECK(graph != nullptr);
  const size_t cells = static_cast<size_t>(n_) * n_;
  ub_.assign(cells, kInfDistance);
  lb_.assign(cells, 0.0);
  for (ObjectId i = 0; i < n_; ++i) ub_[Index(i, i)] = 0.0;
  ub_u_.resize(n_);
  ub_v_.resize(n_);
  lb_u_.resize(n_);
  lb_v_.resize(n_);
  for (const WeightedEdge& e : graph->edges()) {
    OnEdgeResolved(e.u, e.v, e.weight);
  }
}

void AdmClassicBounder::OnEdgeResolved(ObjectId u, ObjectId v, double d) {
  DCHECK_NE(u, v);
  // Snapshot pre-update rows so the relaxation uses consistent values.
  for (ObjectId a = 0; a < n_; ++a) {
    ub_u_[a] = ub_[Index(a, u)];
    ub_v_[a] = ub_[Index(a, v)];
    lb_u_[a] = lb_[Index(a, u)];
    lb_v_[a] = lb_[Index(a, v)];
  }

  for (ObjectId a = 0; a < n_; ++a) {
    const double au_ub = ub_u_[a];
    const double av_ub = ub_v_[a];
    const double au_lb = lb_u_[a];
    const double av_lb = lb_v_[a];
    const double via_u = au_ub + d;
    const double via_v = av_ub + d;
    double* ub_row = &ub_[Index(a, 0)];
    double* lb_row = &lb_[Index(a, 0)];
    for (ObjectId b = 0; b < n_; ++b) {
      // Upper bounds: path through the new edge (either orientation).
      const double ub_cand1 = via_u + ub_v_[b];
      const double ub_cand2 = via_v + ub_u_[b];
      const double ub_cand = ub_cand1 < ub_cand2 ? ub_cand1 : ub_cand2;
      if (ub_cand < ub_row[b]) ub_row[b] = ub_cand;

      // Lower bounds: wrap the new edge, and propagate triangle LBs through
      // each endpoint — the classical one-shot rules (no retro-tightening).
      double lb_cand = d - ub_u_[a] - ub_v_[b];
      const double wrap2 = d - ub_v_[a] - ub_u_[b];
      if (wrap2 > lb_cand) lb_cand = wrap2;
      const double tri1 = au_lb - ub_u_[b];
      if (tri1 > lb_cand) lb_cand = tri1;
      const double tri2 = av_lb - ub_v_[b];
      if (tri2 > lb_cand) lb_cand = tri2;
      const double tri3 = lb_u_[b] - au_ub;
      if (tri3 > lb_cand) lb_cand = tri3;
      const double tri4 = lb_v_[b] - av_ub;
      if (tri4 > lb_cand) lb_cand = tri4;
      if (lb_cand > lb_row[b]) lb_row[b] = lb_cand;
    }
    // Self-distances stay exact.
    lb_row[a] = 0.0;
  }
  lb_[Index(u, v)] = d;
  lb_[Index(v, u)] = d;
  ub_[Index(u, v)] = ub_[Index(u, v)] < d ? ub_[Index(u, v)] : d;
  ub_[Index(v, u)] = ub_[Index(u, v)];
}

}  // namespace metricprox
