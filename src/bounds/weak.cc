#include "bounds/weak.h"

#include <cmath>
#include <cstdio>

#include "core/logging.h"

namespace metricprox {

WeakBounder::WeakBounder(WeakOracle* weak) : weak_(weak) {
  CHECK(weak_ != nullptr);
}

WeakModel WeakBounder::ModelFor(ObjectId i, ObjectId j) {
  const uint64_t key = EdgeKey(i, j).packed();
  auto [it, inserted] = estimates_.try_emplace(key, 0.0);
  if (inserted) it->second = weak_->Estimate(i, j);
  return WeakModel{it->second, weak_->alpha(), weak_->floor()};
}

Interval WeakBounder::Bounds(ObjectId i, ObjectId j) {
  return WeakModelInterval(ModelFor(i, j));
}

void WeakBounder::OnEdgeResolved(ObjectId i, ObjectId j, double d) {
  if (violated_) return;
  const auto it = estimates_.find(EdgeKey(i, j).packed());
  if (it == estimates_.end()) return;
  const Interval advertised =
      WeakModelInterval(WeakModel{it->second, weak_->alpha(), weak_->floor()});
  // Containment up to recomputation noise; the advertised interval is a
  // few fp operations wide, so anything beyond this tolerance is a model
  // violation, not rounding.
  const double tol = 1e-9 * (1.0 + std::abs(advertised.hi));
  if (d >= advertised.lo - tol && d <= advertised.hi + tol) return;
  violated_ = true;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "resolved dist(%u, %u) = %.17g outside the advertised weak "
                "interval [%.17g, %.17g] (w=%.17g, alpha=%.17g, floor=%.17g)",
                i, j, d, advertised.lo, advertised.hi, it->second,
                weak_->alpha(), weak_->floor());
  violation_detail_ = buf;
}

}  // namespace metricprox
