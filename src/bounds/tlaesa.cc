#include "bounds/tlaesa.h"

#include <algorithm>
#include <unordered_map>
#include <random>

#include "core/logging.h"
#include "core/simd.h"

namespace metricprox {

namespace {

struct BuildFrame {
  std::vector<ObjectId> members;
  // members' exact distances to this node's representative.
  std::vector<double> to_rep;
  ObjectId rep;
  uint32_t depth;
  // Distance between this node's rep and its sibling's rep (resolved when
  // the parent split; meaningless for the root).
  double sibling_dist;
};

}  // namespace

std::unique_ptr<TlaesaBounder> TlaesaBounder::Build(ObjectId n,
                                                    const Options& options,
                                                    const ResolveFn& resolve) {
  CHECK_GE(n, 2u);
  auto bounder = std::unique_ptr<TlaesaBounder>(new TlaesaBounder());
  bounder->paths_.resize(n);

  // Base prototypes: the same max-min landmark table LAESA keeps.
  const uint32_t base_pivots = options.num_base_pivots > 0
                                   ? options.num_base_pivots
                                   : DefaultNumLandmarks(n);
  bounder->base_ = SelectMaxMinPivots(n, base_pivots, resolve, options.seed);

  std::mt19937_64 rng(options.seed);
  uint32_t next_node_id = 0;

  // Root frame: random representative, resolve everyone against it.
  BuildFrame root;
  root.rep = static_cast<ObjectId>(rng() % n);
  root.depth = 0;
  root.sibling_dist = 0.0;
  root.members.resize(n);
  for (ObjectId o = 0; o < n; ++o) root.members[o] = o;
  root.to_rep.resize(n);
  for (ObjectId o = 0; o < n; ++o) {
    root.to_rep[o] = (o == root.rep) ? 0.0 : resolve(root.rep, o);
  }

  std::vector<BuildFrame> stack;
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    BuildFrame frame = std::move(stack.back());
    stack.pop_back();
    const uint32_t node_id = next_node_id++;

    // Every member records this level; paths therefore stay depth-aligned,
    // which the Bounds() walk depends on to detect the divergence node.
    for (size_t idx = 0; idx < frame.members.size(); ++idx) {
      const ObjectId o = frame.members[idx];
      bounder->paths_[o].push_back(PathEntry{node_id, frame.rep,
                                             frame.to_rep[idx],
                                             frame.sibling_dist});
    }
    bounder->table_entries_ += frame.members.size();

    if (frame.members.size() <= options.leaf_size ||
        frame.depth + 1 >= options.max_depth) {
      continue;
    }

    // Ball split: the new representative is the member farthest from the
    // current one; members go to the nearer of (old rep, new rep). Only
    // the new rep's side pays fresh oracle calls, and the distance between
    // the two sibling representatives is frame.to_rep[far_idx] — already
    // resolved, and the key to the strong cross-branch bound in Bounds().
    size_t far_idx = 0;
    for (size_t idx = 1; idx < frame.members.size(); ++idx) {
      if (frame.to_rep[idx] > frame.to_rep[far_idx]) far_idx = idx;
    }
    const ObjectId new_rep = frame.members[far_idx];
    if (new_rep == frame.rep) continue;  // all members coincide with rep
    const double rep_gap = frame.to_rep[far_idx];

    BuildFrame keep;   // child that retains frame.rep (distances inherited)
    BuildFrame moved;  // child around new_rep (distances resolved now)
    keep.rep = frame.rep;
    moved.rep = new_rep;
    keep.depth = moved.depth = frame.depth + 1;
    keep.sibling_dist = moved.sibling_dist = rep_gap;
    for (size_t idx = 0; idx < frame.members.size(); ++idx) {
      const ObjectId o = frame.members[idx];
      const double d_old = frame.to_rep[idx];
      const double d_new = (o == new_rep) ? 0.0 : resolve(new_rep, o);
      if (d_new < d_old) {
        moved.members.push_back(o);
        moved.to_rep.push_back(d_new);
      } else {
        keep.members.push_back(o);
        keep.to_rep.push_back(d_old);
      }
    }
    // Degenerate split (everything stayed): stop here to guarantee progress.
    if (moved.members.empty() || keep.members.empty()) continue;
    stack.push_back(std::move(keep));
    stack.push_back(std::move(moved));
  }

  // Leaf prototypes: every object's deepest representative, with the full
  // inter-prototype distance matrix resolved (R is small — about
  // n / leaf_size — so this costs R*(R-1)/2 calls minus pairs the tree
  // already resolved).
  bounder->leaf_rep_index_.assign(n, 0);
  bounder->dist_to_leaf_rep_.assign(n, 0.0);
  std::vector<ObjectId> reps;
  std::unordered_map<ObjectId, uint32_t> rep_index;
  for (ObjectId o = 0; o < n; ++o) {
    const PathEntry& leaf = bounder->paths_[o].back();
    auto [it, inserted] =
        rep_index.emplace(leaf.rep, static_cast<uint32_t>(reps.size()));
    if (inserted) reps.push_back(leaf.rep);
    bounder->leaf_rep_index_[o] = it->second;
    bounder->dist_to_leaf_rep_[o] = leaf.dist_to_rep;
  }
  const uint32_t num_reps = static_cast<uint32_t>(reps.size());
  bounder->num_leaf_reps_ = num_reps;
  bounder->rep_matrix_.assign(static_cast<size_t>(num_reps) * num_reps, 0.0);
  for (uint32_t a = 0; a < num_reps; ++a) {
    for (uint32_t b = a + 1; b < num_reps; ++b) {
      const double d = resolve(reps[a], reps[b]);
      bounder->rep_matrix_[a * num_reps + b] = d;
      bounder->rep_matrix_[b * num_reps + a] = d;
    }
  }
  return bounder;
}

Interval TlaesaBounder::Bounds(ObjectId i, ObjectId j) {
  // Base prototypes: every pair can use the full landmark table — one
  // dispatched pivot-scan kernel call over the two contiguous object rows.
  // The kernel clamps lb to ub before returning while the historical loop
  // clamped once at the very end, but the results are value-identical:
  // lb only grows and ub only shrinks afterwards, so whenever the early
  // clamp fires the pair was already destined for the (ub, ub) outcome.
  const Interval base = simd::ActiveKernels().pivot_scan(
      base_.ObjectRow(i).data(), base_.ObjectRow(j).data(),
      base_.num_pivots());
  double lb = base.lo;
  double ub = base.hi;

  const std::vector<PathEntry>& pi = paths_[i];
  const std::vector<PathEntry>& pj = paths_[j];
  // Tree walk: shared ancestors act as pivots; at the divergence node the
  // two sibling representatives (with their known inter-distance g) give
  //   dist(i,j) >= g - d(i, rep_i) - d(j, rep_j)   (wrap)
  //   dist(i,j) <= d(i, rep_i) + g + d(j, rep_j)
  // which is what makes the tree effective for *far* pairs.
  const size_t depth = std::min(pi.size(), pj.size());
  for (size_t d = 0; d < depth; ++d) {
    const double di = pi[d].dist_to_rep;
    const double dj = pj[d].dist_to_rep;
    if (pi[d].node == pj[d].node) {
      const double gap = di > dj ? di - dj : dj - di;
      if (gap > lb) lb = gap;
      const double sum = di + dj;
      if (sum < ub) ub = sum;
    } else {
      const double g = pi[d].sibling_dist;
      DCHECK_EQ(g, pj[d].sibling_dist);
      const double wrap = g - di - dj;
      if (wrap > lb) lb = wrap;
      const double around = di + g + dj;
      if (around < ub) ub = around;
      break;
    }
  }
  // Leaf prototypes: D(rep_i, rep_j) is in the prototype matrix, and both
  // objects sit close to their leaf representative, so the wrap bound is
  // tight precisely for far pairs.
  const uint32_t ri = leaf_rep_index_[i];
  const uint32_t rj = leaf_rep_index_[j];
  if (ri != rj) {
    const double g = rep_matrix_[ri * num_leaf_reps_ + rj];
    const double di = dist_to_leaf_rep_[i];
    const double dj = dist_to_leaf_rep_[j];
    const double wrap = g - di - dj;
    if (wrap > lb) lb = wrap;
    const double around = di + g + dj;
    if (around < ub) ub = around;
  }

  if (lb > ub) lb = ub;
  return Interval(lb, ub);
}

}  // namespace metricprox
