#ifndef METRICPROX_BOUNDS_RESOLVER_H_
#define METRICPROX_BOUNDS_RESOLVER_H_

#include "core/bounder.h"
#include "core/oracle.h"
#include "core/stats.h"
#include "core/types.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// The unified framework's engine: proximity algorithms issue distance
/// *comparisons* here instead of calling the oracle, and the resolver
/// decides each one as cheaply as possible —
///   1. from the cache of already-resolved distances (the partial graph),
///   2. from the plugged-in bound scheme (Tri, SPLUB, ADM, LAESA, TLAESA,
///      DFT, or none),
///   3. only then from the expensive oracle, recording the new edge and
///      notifying the bounder (the paper's UPDATE problem).
///
/// Because a bound-decided comparison is always consistent with the true
/// distances, an algorithm written against LessThan()/PairLess() produces
/// exactly the output of its oracle-only counterpart (tested property for
/// every shipped algorithm).
///
/// The resolver does not own the oracle, graph or bounder; a typical
/// experiment stacks them on the stack in that order.
class BoundedResolver {
 public:
  /// Starts with no scheme attached (NullBounder semantics).
  BoundedResolver(DistanceOracle* oracle, PartialDistanceGraph* graph);

  BoundedResolver(const BoundedResolver&) = delete;
  BoundedResolver& operator=(const BoundedResolver&) = delete;

  /// Attaches (or with nullptr, detaches) the bound scheme. Construction-
  /// time oracle calls a scheme performs through Distance() are charged to
  /// this resolver's stats.
  void SetBounder(Bounder* bounder);
  Bounder& bounder() { return *bounder_; }

  /// Exact distance; 0 for i == j. Calls the oracle only if the pair is not
  /// yet resolved, inserting the edge and notifying the bounder.
  double Distance(ObjectId i, ObjectId j);

  bool Known(ObjectId i, ObjectId j) const {
    return i == j || graph_->Has(i, j);
  }

  /// Current bound interval: exact for resolved pairs, else the scheme's.
  Interval Bounds(ObjectId i, ObjectId j);

  /// Truth of `dist(i, j) < t`, resolving the pair only when the scheme
  /// cannot decide (the paper's re-authored IF statement against a known
  /// threshold — the dominant pattern in Prim, k-NN and PAM/CLARANS).
  bool LessThan(ObjectId i, ObjectId j, double t);

  /// Truth of `dist(i, j) < dist(k, l)`, the general two-pair comparison.
  /// Falls back to resolving both pairs (up to two oracle calls).
  bool PairLess(ObjectId i, ObjectId j, ObjectId k, ObjectId l);

  /// True iff the cache or the scheme *proves* dist(i, j) > t — never calls
  /// the oracle. The one-sided IF form used by candidate-discard loops
  /// (k-NN: "provably farther than the current k-th neighbor"); a false
  /// return means "not proven", after which the caller typically resolves.
  bool ProvenGreaterThan(ObjectId i, ObjectId j, double t);

  ObjectId num_objects() const { return graph_->num_objects(); }
  PartialDistanceGraph& graph() { return *graph_; }
  const PartialDistanceGraph& graph() const { return *graph_; }
  DistanceOracle& oracle() { return *oracle_; }

  const ResolverStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  DistanceOracle* oracle_;       // not owned
  PartialDistanceGraph* graph_;  // not owned
  NullBounder null_bounder_;
  Bounder* bounder_;  // not owned; never null (defaults to &null_bounder_)
  ResolverStats stats_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_RESOLVER_H_
