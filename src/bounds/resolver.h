#ifndef METRICPROX_BOUNDS_RESOLVER_H_
#define METRICPROX_BOUNDS_RESOLVER_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/bounder.h"
#include "core/oracle.h"
#include "core/stats.h"
#include "core/status.h"
#include "core/types.h"
#include "graph/partial_graph.h"
#include "obs/telemetry.h"

namespace metricprox {

namespace internal {

/// Unwind vehicle for BoundedResolver::RunFallible: thrown by the resolver
/// when the oracle transport fails permanently inside a fallible scope, and
/// caught by RunFallible, which converts it back into a Status. Never
/// escapes the library — the public API stays exception-free.
struct OracleTransportError {
  Status status;
};

}  // namespace internal

class WeakBounder;

/// Approximate-resolution policy (ROADMAP item 4). With `eps > 0`, a
/// comparison verb (LessThan / PairLess / FilterLessThan) may settle
/// against the interval midpoint — without an oracle call — whenever the
/// bound interval's relative gap (SlackRelativeGap) is <= eps; every such
/// decision is counted in decided_by_slack and is consistent with *some*
/// distance within eps relative slack of the true one. With
/// `oracle_budget > 0`, at most that many pair resolutions may reach the
/// oracle: FilterLessThan ships the widest-gap pairs first (a wide
/// interval gains the most information per call), comparisons past the cap
/// are forced to slack (counted in budget_exhausted; their realized error
/// may exceed eps), and resolutions with no slack fallback surface
/// Status::ResourceExhausted through RunFallible. The default policy
/// (eps = 0, no budget) is the exact mode: every code path stays
/// byte-identical to a resolver without a policy. Proof verbs
/// (ProvenGreaterThan / ProvenGreaterOrEqual) are never slack-decided —
/// they are one-sided and already conservative — so eps alone cannot
/// change their callers' outputs; the budget still applies to every
/// resolution.
struct ResolutionPolicy {
  double eps = 0.0;            // relative slack; must be finite, in [0, 1)
  uint64_t oracle_budget = 0;  // max oracle pair resolutions; 0 = unlimited

  bool exact() const { return eps == 0.0 && oracle_budget == 0; }
};

/// The unified framework's engine: proximity algorithms issue distance
/// *comparisons* here instead of calling the oracle, and the resolver
/// decides each one as cheaply as possible —
///   1. from the cache of already-resolved distances (the partial graph),
///   2. from the plugged-in bound scheme (Tri, SPLUB, ADM, LAESA, TLAESA,
///      DFT, or none),
///   3. only then from the expensive oracle, recording the new edge and
///      notifying the bounder (the paper's UPDATE problem).
///
/// Because a bound-decided comparison is always consistent with the true
/// distances, an algorithm written against LessThan()/PairLess() produces
/// exactly the output of its oracle-only counterpart (tested property for
/// every shipped algorithm).
///
/// The resolver does not own the oracle, graph or bounder; a typical
/// experiment stacks them on the stack in that order.
class BoundedResolver {
 public:
  /// Starts with no scheme attached (NullBounder semantics).
  BoundedResolver(DistanceOracle* oracle, PartialDistanceGraph* graph);

  BoundedResolver(const BoundedResolver&) = delete;
  BoundedResolver& operator=(const BoundedResolver&) = delete;

  /// Attaches (or with nullptr, detaches) the bound scheme. Construction-
  /// time oracle calls a scheme performs through Distance() are charged to
  /// this resolver's stats.
  void SetBounder(Bounder* bounder);
  Bounder& bounder() { return *bounder_; }

  /// Installs the approximate-resolution policy and resets the budget
  /// spend. CHECKs eps is finite and in [0, 1). Setting the default
  /// (exact) policy restores exact resolution.
  void SetPolicy(const ResolutionPolicy& policy);
  const ResolutionPolicy& policy() const { return policy_; }

  /// Attaches (or with nullptr, detaches) the weak oracle as a third bound
  /// source. When attached, a comparison the scheme cannot decide consults
  /// the weak oracle's certified interval [max(0, w - floor)/alpha,
  /// (w + floor)*alpha], intersects it with the scheme's bounds, and
  /// decides without a strong-oracle call whenever the intersection clears
  /// the threshold — exact as long as the weak oracle honors its advertised
  /// error model (counted in decided_by_weak / weak_calls). Weak estimates
  /// also steer the oracle-budget ranking in FilterLessThan. A detected
  /// model violation (interval disjoint from the scheme's, or a resolved
  /// distance outside its advertised interval) fails the resolution with
  /// Status::FailedPrecondition instead of corrupting an answer. With
  /// nullptr (the default) every code path is byte-identical to a resolver
  /// without a weak oracle.
  void SetWeakBounder(WeakBounder* weak) { weak_ = weak; }
  WeakBounder* weak_bounder() const { return weak_; }

  /// Oracle pair resolutions charged against the budget since the last
  /// SetPolicy (maintained whether or not a cap is set).
  uint64_t budget_spent() const { return budget_spent_; }

  /// Exact distance; 0 for i == j. Calls the oracle only if the pair is not
  /// yet resolved, inserting the edge and notifying the bounder.
  double Distance(ObjectId i, ObjectId j);

  bool Known(ObjectId i, ObjectId j) const {
    return i == j || graph_->Has(i, j);
  }

  /// Current bound interval: exact for resolved pairs, else the scheme's.
  Interval Bounds(ObjectId i, ObjectId j);

  /// Truth of `dist(i, j) < t`, resolving the pair only when the scheme
  /// cannot decide (the paper's re-authored IF statement against a known
  /// threshold — the dominant pattern in Prim, k-NN and PAM/CLARANS).
  bool LessThan(ObjectId i, ObjectId j, double t);

  /// Truth of `dist(i, j) < dist(k, l)`, the general two-pair comparison.
  /// Falls back to resolving both pairs (up to two oracle calls).
  bool PairLess(ObjectId i, ObjectId j, ObjectId k, ObjectId l);

  /// True iff the cache or the scheme *proves* dist(i, j) > t — never calls
  /// the oracle. The one-sided IF form used by candidate-discard loops
  /// (k-NN: "provably farther than the current k-th neighbor"); a false
  /// return means "not proven", after which the caller typically resolves.
  bool ProvenGreaterThan(ObjectId i, ObjectId j, double t);

  /// True iff the cache or the scheme *proves* dist(i, j) >= t — never
  /// calls the oracle. The tie-loses discard form used by Borůvka: an edge
  /// provably no better than the incumbent (under the (weight, EdgeKey)
  /// total order) can be skipped without resolution.
  bool ProvenGreaterOrEqual(ObjectId i, ObjectId j, double t);

  /// ------------------------------------------------------------------
  /// Batch verbs (the batched resolution pipeline). Each verb performs one
  /// cache sweep, one bounder sweep and ships the undecided remainder to
  /// the oracle in a single BatchDistance call (or, with the batch
  /// transport disabled, a per-pair Distance loop). Decisions are made
  /// strictly before any resolution within a verb, so the two transports
  /// see identical bounder state and produce identical answers *and*
  /// identical oracle_calls — the property the equivalence tests pin down.
  /// ------------------------------------------------------------------

  /// Ensures every listed pair is resolved (present in the cache), issuing
  /// at most one oracle call per *unique unresolved* pair: symmetric and
  /// duplicate pairs are deduplicated, i == j and already-cached pairs are
  /// skipped, and the rest ship to the oracle through the active transport.
  /// Does not count comparisons (it is a resolution verb, like Distance).
  void ResolveAll(std::span<const IdPair> pairs);

  /// Batch of LessThan comparisons: out[k] is the truth of
  /// `dist(pairs[k]) < thresholds[k]`. Counts one comparison per pair.
  /// Sweep order: cache (and the t == +inf short-circuit), then one
  /// DecideBatch over the survivors, then one batched resolution of the
  /// still-undecided remainder.
  std::vector<bool> FilterLessThan(std::span<const IdPair> pairs,
                                   std::span<const double> thresholds);

  /// Convenience form with one shared threshold (range-style filters).
  std::vector<bool> FilterLessThan(std::span<const IdPair> pairs, double t);

  /// Whether batch verbs ship their undecided remainder through
  /// DistanceOracle::BatchDistance (true, the default) or through a
  /// sequential per-pair Distance loop (false). Decisions are unaffected —
  /// this flips only the transport, so outputs and oracle_calls are
  /// identical either way; only batch_calls / batch_resolved_pairs /
  /// batch_oracle_seconds and wall time differ.
  void SetBatchTransport(bool enabled) { batch_transport_ = enabled; }
  bool batch_transport() const { return batch_transport_; }

  ObjectId num_objects() const { return graph_->num_objects(); }
  PartialDistanceGraph& graph() { return *graph_; }
  const PartialDistanceGraph& graph() const { return *graph_; }
  DistanceOracle& oracle() { return *oracle_; }

  /// Failure-aware entry point: runs `body` (any code that issues
  /// comparisons against this resolver) and returns either its value or the
  /// Status of the oracle failure that stopped it. The resolver always
  /// resolves through the fallible oracle verbs; *outside* a RunFallible
  /// scope an exhausted oracle CHECK-aborts (the legacy contract for callers
  /// that never opted into failure handling), while *inside* one the run
  /// unwinds here and surfaces the Status instead. After a failure the
  /// partial graph keeps every edge resolved before the failing call, so a
  /// caller may repair the oracle and re-run against the same resolver
  /// without repaying them.
  StatusOr<double> RunFallible(
      const std::function<double(BoundedResolver*)>& body);

  /// Status of the oracle failure that aborted the last RunFallible (OK if
  /// it completed).
  const Status& oracle_status() const { return oracle_status_; }

  const ResolverStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset();
    StampKernelDispatch();
  }

  /// Attaches (or with nullptr, detaches) the telemetry bundle. Telemetry
  /// observes decisions without participating in them: it never issues an
  /// oracle call, never touches a stat counter, and with no bundle
  /// attached every instrumentation site reduces to one null check — so a
  /// traced run and an untraced run produce byte-identical outputs and
  /// identical counters (pinned by the trace equivalence test).
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }
  Telemetry* telemetry() const { return telemetry_; }

 private:
  /// Records the active simd::Tier in stats_.kernel_dispatch so run reports
  /// carry the kernel tier that actually executed (see stats.h).
  void StampKernelDispatch();

  /// Shared tail of the batch verbs: CHECKs id ranges, drops i == j and
  /// cached pairs, deduplicates symmetric/repeated pairs (first-occurrence
  /// order), then resolves the remainder through the active transport.
  void ResolveUnknown(std::span<const IdPair> pairs);

  /// Terminates the current resolution because the oracle transport failed
  /// permanently for `failed_pairs` pairs: records the failure in the stats,
  /// then throws internal::OracleTransportError inside a RunFallible scope
  /// or CHECK-aborts outside one.
  [[noreturn]] void FailTransport(Status status, uint64_t failed_pairs);

  /// Approximate-mode helpers (all inert under the default exact policy).
  bool SlackActive() const { return policy_.eps > 0.0; }
  bool BudgetActive() const { return policy_.oracle_budget > 0; }
  bool PolicyActive() const { return SlackActive() || BudgetActive(); }
  uint64_t BudgetRemaining() const {
    return policy_.oracle_budget > budget_spent_
               ? policy_.oracle_budget - budget_spent_
               : 0;
  }
  /// The surrogate value a slack decision compares in place of the exact
  /// distance: the midpoint of the (non-negative part of the) interval.
  static double SlackMidpoint(const Interval& b) {
    return 0.5 * (std::max(b.lo, 0.0) + b.hi);
  }
  /// Counted bounder read used by the slack paths (unlike ProbeBoundGap,
  /// which is stats-neutral: here the interval feeds the decision).
  Interval SlackBounds(ObjectId i, ObjectId j);
  /// Settles `dist(i, j) < t` by slack against interval `b` with relative
  /// gap `gap`: counts decided_by_slack (plus budget_exhausted when
  /// `forced`), records the realized error, traces, and reports the
  /// decision to the bounder's slack observation channel.
  bool DecideBySlack(ObjectId i, ObjectId j, double t, const Interval& b,
                     double gap, bool forced);
  /// Terminates the current resolution because the oracle budget cannot
  /// cover `requested` more pair resolutions: surfaces
  /// Status::ResourceExhausted through RunFallible (CHECK-aborts outside a
  /// fallible scope). Not an oracle failure — oracle_failures stays put.
  [[noreturn]] void FailBudget(uint64_t requested);

  /// Weak-oracle helpers (all inert with no weak bounder attached).
  bool WeakActive() const { return weak_ != nullptr; }
  /// Counted weak consult: bumps weak_calls, records the interval's
  /// relative gap in the weak_interval_width histogram, and returns the
  /// advertised interval for the pair.
  Interval WeakQuery(ObjectId i, ObjectId j);
  /// Consults the weak oracle and intersects its advertised interval with
  /// the scheme interval `b`. Disjointness beyond BoundDecisionMargin is a
  /// detected model violation and fails the resolution (FailWeakModel);
  /// sub-margin fp-noise disjointness clamps to a point like HybridBounder.
  Interval WeakIntersect(ObjectId i, ObjectId j, const Interval& b);
  /// Settles `dist(i, j) < t` from the weak-intersected interval `eff`
  /// when it clears the threshold by the decision margin: counts
  /// decided_by_weak, traces, and reports the decision (with its advertised
  /// error model) to the bounder's weak observation channel. Returns
  /// nullopt when the interval straddles the threshold.
  std::optional<bool> DecideByWeak(ObjectId i, ObjectId j, double t,
                                   const Interval& eff);
  /// Forwards a resolved edge to the weak bounder's violation cross-check
  /// and escalates a latched violation. No-op with no weak bounder.
  void NotifyWeakResolved(ObjectId i, ObjectId j, double d);
  /// Terminates the current resolution because the weak oracle violated
  /// its advertised error model: surfaces Status::FailedPrecondition
  /// through RunFallible (CHECK-aborts outside a fallible scope).
  [[noreturn]] void FailWeakModel(const std::string& detail);

  /// Telemetry fast paths: the inline wrappers cost one predictable branch
  /// when telemetry is detached; the Slow variants do the actual work.
  void Trace(TraceEventKind kind, ObjectId i, ObjectId j, double threshold) {
    if (telemetry_ != nullptr) TraceSlow(kind, i, j, threshold);
  }
  void ProbeBoundGap(ObjectId i, ObjectId j, double threshold) {
    if (telemetry_ != nullptr) ProbeBoundGapSlow(i, j, threshold);
  }
  void TraceSlow(TraceEventKind kind, ObjectId i, ObjectId j,
                 double threshold);
  void ProbeBoundGapSlow(ObjectId i, ObjectId j, double threshold);

  DistanceOracle* oracle_;       // not owned
  PartialDistanceGraph* graph_;  // not owned
  NullBounder null_bounder_;
  Bounder* bounder_;  // not owned; never null (defaults to &null_bounder_)
  ResolverStats stats_;
  Telemetry* telemetry_ = nullptr;  // not owned; nullptr = telemetry off
  WeakBounder* weak_ = nullptr;     // not owned; nullptr = weak oracle off
  ResolutionPolicy policy_;         // default = exact mode
  uint64_t budget_spent_ = 0;
  bool batch_transport_ = true;
  int fallible_depth_ = 0;
  Status oracle_status_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_RESOLVER_H_
