#ifndef METRICPROX_BOUNDS_LAESA_H_
#define METRICPROX_BOUNDS_LAESA_H_

#include <memory>
#include <string_view>

#include "bounds/pivots.h"
#include "check/certificate.h"
#include "core/bounder.h"
#include "core/simd.h"
#include "core/types.h"

namespace metricprox {

/// The LAESA baseline (Micó, Oncina & Vidal 1994) adapted as a bound
/// plug-in: k landmark pivots with a precomputed k x n distance table;
/// for any pair,
///     lb = max_p |D(p,i) - D(p,j)|      (pivot triangle lower bound)
///     ub = min_p (D(p,i) + D(p,j))
/// Queries are O(k) and never improve during the run: LAESA ignores every
/// distance the proximity algorithm resolves after construction — the
/// structural weakness the paper's Section 5.4.1 experiments highlight.
class LaesaBounder : public Bounder {
 public:
  /// Builds the pivot table with `num_pivots` max-min landmarks; the
  /// `resolve` function performs (and is expected to account for) the
  /// construction-time oracle calls.
  static std::unique_ptr<LaesaBounder> Build(ObjectId n, uint32_t num_pivots,
                                             const ResolveFn& resolve,
                                             uint64_t seed);

  explicit LaesaBounder(PivotTable table) : table_(std::move(table)) {}

  std::string_view name() const override { return "laesa"; }

  /// One dispatched pivot-scan kernel call over the two contiguous object
  /// rows (bit-identical to the historical scalar sweep on every tier; see
  /// core/simd.h).
  Interval Bounds(ObjectId i, ObjectId j) override {
    return simd::ActiveKernels().pivot_scan(table_.ObjectRow(i).data(),
                                            table_.ObjectRow(j).data(),
                                            table_.num_pivots());
  }

  void OnEdgeResolved(ObjectId, ObjectId, double) override {}

  /// Same scan as Bounds() with argbest pivots: the winning pivot p yields
  /// the path i-p-j (upper) or the wrap of the longer pivot edge (lower).
  /// Pivot rows are resolved through the shared resolver at build time, so
  /// the witness edges are present in the partial graph. A degenerate
  /// witness pivot (p == i or p == j) collapses to the direct edge; it can
  /// only win when the pair itself is resolved, which the resolver
  /// short-circuits before consulting any bounder.
  bool CertifyBounds(ObjectId i, ObjectId j,
                     BoundCertificate* cert) override {
    double lb = 0.0;
    double ub = kInfDistance;
    ObjectId ub_p = kInvalidObject;
    ObjectId lb_p = kInvalidObject;
    bool lb_is_i = true;  // true when the winning gap was d(p,i) - d(p,j)
    for (uint32_t r = 0; r < table_.num_pivots(); ++r) {
      const double di = table_.At(r, i);
      const double dj = table_.At(r, j);
      const double gap = di > dj ? di - dj : dj - di;
      if (gap > lb) {
        lb = gap;
        lb_p = table_.pivot(r);
        lb_is_i = di > dj;
      }
      const double sum = di + dj;
      if (sum < ub) {
        ub = sum;
        ub_p = table_.pivot(r);
      }
    }
    if (lb > ub) lb = ub;
    cert->kind = BoundCertificate::Kind::kInterval;
    cert->lb = lb;
    cert->ub = ub;
    cert->has_upper = ub_p != kInvalidObject;
    if (cert->has_upper) {
      if (ub_p == i || ub_p == j) {
        cert->upper.nodes = {i, j};
      } else {
        cert->upper.nodes = {i, ub_p, j};
      }
      cert->upper.rho = 1.0;
    }
    cert->has_lower = lb_p != kInvalidObject;
    if (cert->has_lower) {
      cert->lower.rho = 1.0;
      if (lb_p == i || lb_p == j) {
        cert->lower.u = i;
        cert->lower.v = j;
        cert->lower.path_iu = {i};
        cert->lower.path_vj = {j};
      } else if (lb_is_i) {
        // d(p,i) - d(p,j): wrap the edge (i, p), pay the path p-j.
        cert->lower.u = i;
        cert->lower.v = lb_p;
        cert->lower.path_iu = {i};
        cert->lower.path_vj = {lb_p, j};
      } else {
        // d(p,j) - d(p,i): wrap the edge (p, j), pay the path i-p.
        cert->lower.u = lb_p;
        cert->lower.v = j;
        cert->lower.path_iu = {i, lb_p};
        cert->lower.path_vj = {j};
      }
    }
    return true;
  }

  uint32_t num_pivots() const { return table_.num_pivots(); }
  const PivotTable& table() const { return table_; }

 private:
  PivotTable table_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_LAESA_H_
