#ifndef METRICPROX_BOUNDS_LAESA_H_
#define METRICPROX_BOUNDS_LAESA_H_

#include <memory>
#include <string_view>

#include "core/bounder.h"
#include "core/types.h"
#include "bounds/pivots.h"

namespace metricprox {

/// The LAESA baseline (Micó, Oncina & Vidal 1994) adapted as a bound
/// plug-in: k landmark pivots with a precomputed k x n distance table;
/// for any pair,
///     lb = max_p |D(p,i) - D(p,j)|      (pivot triangle lower bound)
///     ub = min_p (D(p,i) + D(p,j))
/// Queries are O(k) and never improve during the run: LAESA ignores every
/// distance the proximity algorithm resolves after construction — the
/// structural weakness the paper's Section 5.4.1 experiments highlight.
class LaesaBounder : public Bounder {
 public:
  /// Builds the pivot table with `num_pivots` max-min landmarks; the
  /// `resolve` function performs (and is expected to account for) the
  /// construction-time oracle calls.
  static std::unique_ptr<LaesaBounder> Build(ObjectId n, uint32_t num_pivots,
                                             const ResolveFn& resolve,
                                             uint64_t seed);

  explicit LaesaBounder(PivotTable table) : table_(std::move(table)) {}

  std::string_view name() const override { return "laesa"; }

  Interval Bounds(ObjectId i, ObjectId j) override {
    double lb = 0.0;
    double ub = kInfDistance;
    for (const std::vector<double>& row : table_.dist) {
      const double di = row[i];
      const double dj = row[j];
      const double gap = di > dj ? di - dj : dj - di;
      if (gap > lb) lb = gap;
      const double sum = di + dj;
      if (sum < ub) ub = sum;
    }
    if (lb > ub) lb = ub;
    return Interval(lb, ub);
  }

  void OnEdgeResolved(ObjectId, ObjectId, double) override {}

  uint32_t num_pivots() const {
    return static_cast<uint32_t>(table_.pivots.size());
  }
  const PivotTable& table() const { return table_; }

 private:
  PivotTable table_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_LAESA_H_
