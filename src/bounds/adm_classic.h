#ifndef METRICPROX_BOUNDS_ADM_CLASSIC_H_
#define METRICPROX_BOUNDS_ADM_CLASSIC_H_

#include <string_view>
#include <vector>

#include "core/bounder.h"
#include "core/types.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// Classical ADM (Wang & Shasha 1990) with *incremental* matrix updates —
/// the way the original maintains its bounds, as opposed to AdmBounder,
/// which recomputes the tightest wrap lower bound at query time.
///
/// Both an UB and an LB matrix are kept. Resolving (u, v) = d relaxes every
/// pair through the new edge in O(n^2):
///   UB[a][b] <- min(UB[a][b], UB[a][u] + d + UB[v][b], ...)
///   LB[a][b] <- max(LB[a][b],
///                   d - UB[a][u] - UB[v][b],  d - UB[a][v] - UB[u][b],
///                   LB[a][u] - UB[u][b],      LB[a][v] - UB[v][b],
///                   LB[u][b] - UB[a][u],      LB[v][b] - UB[a][v])
/// Queries are O(1). The upper bounds stay exact (shortest paths), but the
/// lower bounds go *stale*: when a later edge shortens a path that feeds an
/// earlier wrap bound, the old wrap is never revisited, so classic LBs are
/// weaker than the tightest. That staleness is precisely the headroom the
/// paper's DIRECT FEASIBILITY TEST (and our query-time AdmBounder) exploit
/// in Figure 4.
class AdmClassicBounder : public Bounder {
 public:
  explicit AdmClassicBounder(const PartialDistanceGraph* graph);

  std::string_view name() const override { return "adm-classic"; }

  Interval Bounds(ObjectId i, ObjectId j) override {
    const double ub = ub_[Index(i, j)];
    double lb = lb_[Index(i, j)];
    if (lb > ub) lb = ub;
    return Interval(lb, ub);
  }

  void OnEdgeResolved(ObjectId u, ObjectId v, double d) override;

 private:
  size_t Index(ObjectId i, ObjectId j) const {
    return static_cast<size_t>(i) * n_ + j;
  }

  ObjectId n_;
  std::vector<double> ub_;
  std::vector<double> lb_;
  // Scratch row snapshots for the update pass.
  std::vector<double> ub_u_;
  std::vector<double> ub_v_;
  std::vector<double> lb_u_;
  std::vector<double> lb_v_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_ADM_CLASSIC_H_
