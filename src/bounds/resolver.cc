#include "bounds/resolver.h"

#include "core/logging.h"

namespace metricprox {

BoundedResolver::BoundedResolver(DistanceOracle* oracle,
                                 PartialDistanceGraph* graph)
    : oracle_(oracle), graph_(graph), bounder_(&null_bounder_) {
  CHECK(oracle != nullptr);
  CHECK(graph != nullptr);
  CHECK_EQ(oracle->num_objects(), graph->num_objects());
}

void BoundedResolver::SetBounder(Bounder* bounder) {
  bounder_ = bounder != nullptr ? bounder : &null_bounder_;
}

double BoundedResolver::Distance(ObjectId i, ObjectId j) {
  if (i == j) return 0.0;
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    return *cached;
  }
  Stopwatch oracle_watch;
  const double d = oracle_->Distance(i, j);
  stats_.oracle_seconds += oracle_watch.ElapsedSeconds();
  ++stats_.oracle_calls;

  graph_->Insert(i, j, d);
  Stopwatch bounder_watch;
  bounder_->OnEdgeResolved(i, j, d);
  stats_.bounder_seconds += bounder_watch.ElapsedSeconds();
  return d;
}

Interval BoundedResolver::Bounds(ObjectId i, ObjectId j) {
  if (i == j) return Interval::Exact(0.0);
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    return Interval::Exact(*cached);
  }
  ++stats_.bound_queries;
  Stopwatch watch;
  const Interval bounds = bounder_->Bounds(i, j);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  return bounds;
}

bool BoundedResolver::LessThan(ObjectId i, ObjectId j, double t) {
  ++stats_.comparisons;
  if (t == kInfDistance) {
    // Any finite metric distance is below +inf; deciding here keeps an
    // infinite right-hand side out of scheme internals (notably DFT's LP).
    // Applied uniformly across schemes so call accounting stays comparable.
    ++stats_.decided_by_bounds;
    return true;
  }
  if (i == j) {
    ++stats_.decided_by_cache;
    return 0.0 < t;
  }
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    ++stats_.decided_by_cache;
    return *cached < t;
  }
  ++stats_.bound_queries;
  Stopwatch watch;
  const std::optional<bool> decided = bounder_->DecideLessThan(i, j, t);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  if (decided.has_value()) {
    ++stats_.decided_by_bounds;
    return *decided;
  }
  ++stats_.decided_by_oracle;
  return Distance(i, j) < t;
}

bool BoundedResolver::ProvenGreaterThan(ObjectId i, ObjectId j, double t) {
  ++stats_.comparisons;
  if (i == j) {
    ++stats_.decided_by_cache;
    return 0.0 > t;
  }
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    ++stats_.decided_by_cache;
    return *cached > t;
  }
  ++stats_.bound_queries;
  Stopwatch watch;
  const std::optional<bool> decided = bounder_->DecideGreaterThan(i, j, t);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  if (decided.has_value() && *decided) {
    ++stats_.decided_by_bounds;
    return true;
  }
  // Not proven (either provably <= t or undecidable): the caller resolves.
  ++stats_.decided_by_oracle;
  return false;
}

bool BoundedResolver::PairLess(ObjectId i, ObjectId j, ObjectId k,
                               ObjectId l) {
  ++stats_.comparisons;
  const std::optional<double> dij =
      (i == j) ? std::optional<double>(0.0) : graph_->Get(i, j);
  const std::optional<double> dkl =
      (k == l) ? std::optional<double>(0.0) : graph_->Get(k, l);
  if (dij && dkl) {
    ++stats_.decided_by_cache;
    return *dij < *dkl;
  }

  std::optional<bool> decided;
  {
    ++stats_.bound_queries;
    Stopwatch watch;
    if (dkl) {
      // Right side known: `dist(i,j) < t`.
      decided = bounder_->DecideLessThan(i, j, *dkl);
    } else if (dij) {
      // Left side known: `dist(k,l) > t` (not the negation of LessThan —
      // equality must resolve to false here and the scheme must stay exact).
      decided = bounder_->DecideGreaterThan(k, l, *dij);
    } else {
      decided = bounder_->DecidePairLess(i, j, k, l);
    }
    stats_.bounder_seconds += watch.ElapsedSeconds();
  }
  if (decided.has_value()) {
    ++stats_.decided_by_bounds;
    return *decided;
  }
  ++stats_.decided_by_oracle;
  const double a = dij ? *dij : Distance(i, j);
  const double b = dkl ? *dkl : Distance(k, l);
  return a < b;
}

}  // namespace metricprox
