#include "bounds/resolver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "bounds/weak.h"
#include "core/logging.h"
#include "core/simd.h"
#include "obs/span.h"

namespace metricprox {

BoundedResolver::BoundedResolver(DistanceOracle* oracle,
                                 PartialDistanceGraph* graph)
    : oracle_(oracle), graph_(graph), bounder_(&null_bounder_) {
  CHECK(oracle != nullptr);
  CHECK(graph != nullptr);
  CHECK_EQ(oracle->num_objects(), graph->num_objects());
  StampKernelDispatch();
}

void BoundedResolver::StampKernelDispatch() {
  stats_.kernel_dispatch = static_cast<uint64_t>(simd::ActiveTier());
}

void BoundedResolver::SetBounder(Bounder* bounder) {
  bounder_ = bounder != nullptr ? bounder : &null_bounder_;
}

void BoundedResolver::SetPolicy(const ResolutionPolicy& policy) {
  CHECK(std::isfinite(policy.eps)) << "eps must be finite";
  CHECK_GE(policy.eps, 0.0) << "eps must be non-negative";
  CHECK_LT(policy.eps, 1.0) << "eps must be below 1";
  policy_ = policy;
  budget_spent_ = 0;
}

Interval BoundedResolver::SlackBounds(ObjectId i, ObjectId j) {
  ++stats_.bound_queries;
  Stopwatch watch;
  const Interval bounds = bounder_->Bounds(i, j);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  return bounds;
}

bool BoundedResolver::DecideBySlack(ObjectId i, ObjectId j, double t,
                                    const Interval& b, double gap,
                                    bool forced) {
  ++stats_.decided_by_slack;
  if (forced) ++stats_.budget_exhausted;
  if (telemetry_ != nullptr) telemetry_->slack_realized_error.Record(gap);
  Trace(TraceEventKind::kDecidedBySlack, i, j, t);
  const bool outcome = SlackMidpoint(b) < t;
  Stopwatch watch;
  bounder_->ObserveSlackLessThan(i, j, t, b, policy_.eps, outcome);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  return outcome;
}

Interval BoundedResolver::WeakQuery(ObjectId i, ObjectId j) {
  ++stats_.weak_calls;
  const Interval w = weak_->Bounds(i, j);
  if (telemetry_ != nullptr) {
    telemetry_->weak_interval_width.Record(SlackRelativeGap(w));
  }
  return w;
}

Interval BoundedResolver::WeakIntersect(ObjectId i, ObjectId j,
                                        const Interval& b) {
  const Interval w = WeakQuery(i, j);
  if (w.lo > b.hi + BoundDecisionMargin(b.hi) ||
      b.lo > w.hi + BoundDecisionMargin(w.hi)) {
    // The scheme's interval is certified, so a weak interval that misses it
    // entirely proves the weak oracle broke its advertised error model.
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "weak interval [%.17g, %.17g] for pair (%u, %u) is disjoint "
                  "from the scheme's certified interval [%.17g, %.17g]",
                  w.lo, w.hi, i, j, b.lo, b.hi);
    FailWeakModel(buf);
  }
  double lo = std::max(w.lo, b.lo);
  double hi = std::min(w.hi, b.hi);
  if (lo > hi) lo = hi;  // sub-margin fp disagreement; clamp like Hybrid
  return Interval(lo, hi);
}

std::optional<bool> BoundedResolver::DecideByWeak(ObjectId i, ObjectId j,
                                                  double t,
                                                  const Interval& eff) {
  const double margin = BoundDecisionMargin(t);
  std::optional<bool> outcome;
  if (eff.hi < t - margin) {
    outcome = true;
  } else if (eff.lo >= t + margin) {
    outcome = false;
  }
  if (!outcome.has_value()) return std::nullopt;
  ++stats_.decided_by_weak;
  Trace(TraceEventKind::kDecidedByWeak, i, j, t);
  Stopwatch watch;
  bounder_->ObserveWeakLessThan(i, j, t, weak_->ModelFor(i, j), *outcome);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  return outcome;
}

void BoundedResolver::NotifyWeakResolved(ObjectId i, ObjectId j, double d) {
  if (weak_ == nullptr) return;
  weak_->OnEdgeResolved(i, j, d);
  if (weak_->violated()) FailWeakModel(weak_->violation_detail());
}

void BoundedResolver::FailWeakModel(const std::string& detail) {
  oracle_status_ = Status::FailedPrecondition(
      "weak oracle violated its advertised error model: " + detail);
  if (fallible_depth_ > 0) {
    throw internal::OracleTransportError{oracle_status_};
  }
  CHECK(false) << "weak-oracle model violation outside RunFallible: "
               << oracle_status_;
  std::abort();  // unreachable; keeps [[noreturn]] honest for the compiler
}

void BoundedResolver::FailBudget(uint64_t requested) {
  oracle_status_ = Status::ResourceExhausted(
      "oracle budget exhausted: " + std::to_string(budget_spent_) + "/" +
      std::to_string(policy_.oracle_budget) + " calls spent, " +
      std::to_string(requested) + " more needed with no slack fallback");
  if (fallible_depth_ > 0) {
    throw internal::OracleTransportError{oracle_status_};
  }
  CHECK(false) << "oracle budget exhausted outside RunFallible: "
               << oracle_status_;
  std::abort();  // unreachable; keeps [[noreturn]] honest for the compiler
}

void BoundedResolver::FailTransport(Status status, uint64_t failed_pairs) {
  stats_.oracle_failures += failed_pairs;
  oracle_status_ = status;
  if (fallible_depth_ > 0) {
    throw internal::OracleTransportError{std::move(status)};
  }
  CHECK(false) << "oracle transport failed outside RunFallible: "
               << oracle_status_;
  std::abort();  // unreachable; keeps [[noreturn]] honest for the compiler
}

StatusOr<double> BoundedResolver::RunFallible(
    const std::function<double(BoundedResolver*)>& body) {
  CHECK(body != nullptr);
  oracle_status_ = Status::OK();
  ++fallible_depth_;
  try {
    const double value = body(this);
    --fallible_depth_;
    return value;
  } catch (const internal::OracleTransportError& error) {
    --fallible_depth_;
    return error.status;
  }
}

double BoundedResolver::Distance(ObjectId i, ObjectId j) {
  CHECK_LT(i, graph_->num_objects());
  CHECK_LT(j, graph_->num_objects());
  if (i == j) return 0.0;
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    return *cached;
  }
  if (BudgetActive() && BudgetRemaining() == 0) FailBudget(1);
  Stopwatch oracle_watch;
  StatusOr<double> resolved = oracle_->TryDistance(i, j);
  const double oracle_elapsed = oracle_watch.ElapsedSeconds();
  stats_.oracle_seconds += oracle_elapsed;
  if (!resolved.ok()) FailTransport(resolved.status(), /*failed_pairs=*/1);
  const double d = resolved.value();
  ++stats_.oracle_calls;
  ++budget_spent_;
  if (telemetry_ != nullptr) {
    telemetry_->oracle_latency_seconds.Record(oracle_elapsed);
    TraceEvent event;
    event.kind = TraceEventKind::kOracleCall;
    event.i = i;
    event.j = j;
    event.value = d;
    event.seconds = oracle_elapsed;
    telemetry_->Emit(event);
  }

  graph_->Insert(i, j, d);
  Stopwatch bounder_watch;
  bounder_->OnEdgeResolved(i, j, d);
  stats_.bounder_seconds += bounder_watch.ElapsedSeconds();
  // Every paid resolution doubles as a free ground-truth check of the weak
  // oracle's advertised interval for this pair.
  NotifyWeakResolved(i, j, d);
  return d;
}

Interval BoundedResolver::Bounds(ObjectId i, ObjectId j) {
  if (i == j) return Interval::Exact(0.0);
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    return Interval::Exact(*cached);
  }
  ++stats_.bound_queries;
  Stopwatch watch;
  const Interval bounds = bounder_->Bounds(i, j);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  return bounds;
}

bool BoundedResolver::LessThan(ObjectId i, ObjectId j, double t) {
  ++stats_.comparisons;
  Trace(TraceEventKind::kComparison, i, j, t);
  if (t == kInfDistance) {
    // Any finite metric distance is below +inf; deciding here keeps an
    // infinite right-hand side out of scheme internals (notably DFT's LP).
    // Applied uniformly across schemes so call accounting stays comparable.
    ++stats_.decided_by_bounds;
    Trace(TraceEventKind::kDecidedByBounds, i, j, t);
    return true;
  }
  if (i == j) {
    ++stats_.decided_by_cache;
    Trace(TraceEventKind::kDecidedByCache, i, j, t);
    return 0.0 < t;
  }
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    ++stats_.decided_by_cache;
    Trace(TraceEventKind::kDecidedByCache, i, j, t);
    return *cached < t;
  }
  ++stats_.bound_queries;
  Stopwatch watch;
  const std::optional<bool> decided = bounder_->DecideLessThan(i, j, t);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  if (decided.has_value()) {
    ++stats_.decided_by_bounds;
    Trace(TraceEventKind::kDecidedByBounds, i, j, t);
    return *decided;
  }
  if (WeakActive() || PolicyActive()) {
    const Interval b = SlackBounds(i, j);
    if (WeakActive()) {
      // Weak before slack: a weak decision is exact (when the model holds),
      // a slack decision is not.
      const std::optional<bool> by_weak =
          DecideByWeak(i, j, t, WeakIntersect(i, j, b));
      if (by_weak.has_value()) return *by_weak;
    }
    if (PolicyActive()) {
      const double gap = SlackRelativeGap(b);
      if (SlackActive() && gap <= policy_.eps) {
        return DecideBySlack(i, j, t, b, gap, /*forced=*/false);
      }
      if (BudgetActive() && BudgetRemaining() == 0) {
        if (!std::isfinite(b.hi)) FailBudget(1);
        return DecideBySlack(i, j, t, b, gap, /*forced=*/true);
      }
    }
  }
  ++stats_.decided_by_oracle;
  // The gap probe must run before Distance(): afterwards the interval
  // collapses to the exact value.
  ProbeBoundGap(i, j, t);
  Trace(TraceEventKind::kDecidedByOracle, i, j, t);
  return Distance(i, j) < t;
}

bool BoundedResolver::ProvenGreaterThan(ObjectId i, ObjectId j, double t) {
  ++stats_.comparisons;
  Trace(TraceEventKind::kComparison, i, j, t);
  if (i == j) {
    ++stats_.decided_by_cache;
    Trace(TraceEventKind::kDecidedByCache, i, j, t);
    return 0.0 > t;
  }
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    ++stats_.decided_by_cache;
    Trace(TraceEventKind::kDecidedByCache, i, j, t);
    return *cached > t;
  }
  ++stats_.bound_queries;
  Stopwatch watch;
  const std::optional<bool> decided = bounder_->DecideGreaterThan(i, j, t);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  if (decided.has_value() && *decided) {
    ++stats_.decided_by_bounds;
    Trace(TraceEventKind::kDecidedByBounds, i, j, t);
    return true;
  }
  if (WeakActive() && !decided.has_value()) {
    const Interval eff = WeakIntersect(i, j, SlackBounds(i, j));
    if (eff.lo > t + BoundDecisionMargin(t)) {
      ++stats_.decided_by_weak;
      Trace(TraceEventKind::kDecidedByWeak, i, j, t);
      Stopwatch weak_watch;
      bounder_->ObserveWeakGreaterThan(i, j, t, weak_->ModelFor(i, j),
                                       /*outcome=*/true);
      stats_.bounder_seconds += weak_watch.ElapsedSeconds();
      return true;
    }
  }
  // Not proven (either provably <= t or undecidable). No oracle call happens
  // here — the caller typically resolves next, and *that* comparison is the
  // one charged to the oracle.
  ++stats_.undecided;
  ProbeBoundGap(i, j, t);
  Trace(TraceEventKind::kUndecided, i, j, t);
  return false;
}

bool BoundedResolver::ProvenGreaterOrEqual(ObjectId i, ObjectId j, double t) {
  ++stats_.comparisons;
  Trace(TraceEventKind::kComparison, i, j, t);
  if (t == kInfDistance) {
    // No finite metric distance reaches +inf; decided without the scheme
    // (mirrors the LessThan short-circuit, keeping inf out of DFT's LP).
    ++stats_.decided_by_bounds;
    Trace(TraceEventKind::kDecidedByBounds, i, j, t);
    return false;
  }
  if (i == j) {
    ++stats_.decided_by_cache;
    Trace(TraceEventKind::kDecidedByCache, i, j, t);
    return 0.0 >= t;
  }
  if (const std::optional<double> cached = graph_->Get(i, j)) {
    ++stats_.decided_by_cache;
    Trace(TraceEventKind::kDecidedByCache, i, j, t);
    return *cached >= t;
  }
  ++stats_.bound_queries;
  Stopwatch watch;
  const std::optional<bool> decided = bounder_->DecideLessThan(i, j, t);
  stats_.bounder_seconds += watch.ElapsedSeconds();
  if (decided.has_value() && !*decided) {
    // dist(i, j) < t is provably false, i.e. dist(i, j) >= t.
    ++stats_.decided_by_bounds;
    Trace(TraceEventKind::kDecidedByBounds, i, j, t);
    return true;
  }
  if (WeakActive() && !decided.has_value()) {
    const Interval eff = WeakIntersect(i, j, SlackBounds(i, j));
    if (eff.lo >= t + BoundDecisionMargin(t)) {
      ++stats_.decided_by_weak;
      Trace(TraceEventKind::kDecidedByWeak, i, j, t);
      Stopwatch weak_watch;
      // A >= t proof travels the LessThan observation channel with
      // outcome=false (`dist(i, j) < t` provably false).
      bounder_->ObserveWeakLessThan(i, j, t, weak_->ModelFor(i, j),
                                    /*outcome=*/false);
      stats_.bounder_seconds += weak_watch.ElapsedSeconds();
      return true;
    }
  }
  // Not proven (either provably < t or undecidable). As in
  // ProvenGreaterThan, nothing reached the oracle on this path.
  ++stats_.undecided;
  ProbeBoundGap(i, j, t);
  Trace(TraceEventKind::kUndecided, i, j, t);
  return false;
}

void BoundedResolver::ResolveUnknown(std::span<const IdPair> pairs) {
  // Dedup sweep: keep the first occurrence of each unresolved unordered
  // pair, so a pair that appears twice (or as both (i,j) and (j,i)) costs
  // one oracle call, never two.
  std::vector<IdPair> unique;
  unique.reserve(pairs.size());
  std::unordered_set<EdgeKey, EdgeKeyHash> seen;
  for (const IdPair& p : pairs) {
    CHECK_LT(p.i, graph_->num_objects());
    CHECK_LT(p.j, graph_->num_objects());
    if (p.i == p.j) continue;
    if (graph_->Has(p.i, p.j)) continue;
    if (!seen.insert(EdgeKey(p.i, p.j)).second) continue;
    unique.push_back(p);
  }
  if (unique.empty()) return;
  // The session-side root of the causal chain: resolve -> (oracle per-pair
  // or coalesce_submit -> oracle_rtt) nest under this span on this thread.
  ScopedSpan resolve_span(telemetry_, "resolve", unique.size());
  // Resolution verbs are all-or-nothing under a budget: there is no slack
  // fallback for a caller that demanded exact distances. (FilterLessThan
  // pre-partitions its remainder to fit, so it never trips this.)
  if (BudgetActive() && unique.size() > BudgetRemaining()) {
    FailBudget(unique.size());
  }
  if (telemetry_ != nullptr) {
    // Recorded under both transports: this histogram measures the
    // algorithm's batching structure (unique unresolved pairs per verb),
    // not the wire protocol.
    telemetry_->batch_size.Record(static_cast<double>(unique.size()));
  }

  if (!batch_transport_) {
    // Scalar transport: the legacy per-pair path, byte for byte (Distance
    // counts oracle_calls and notifies the bounder edge by edge).
    for (const IdPair& p : unique) Distance(p.i, p.j);
    return;
  }

  // Batch transport: one oracle round-trip, one bulk insert, one bulk
  // bounder notification.
  std::vector<double> distances(unique.size());
  std::vector<Status> statuses(unique.size());
  Stopwatch oracle_watch;
  const Status batch_status =
      oracle_->TryBatchDistance(unique, distances, statuses);
  const double oracle_elapsed = oracle_watch.ElapsedSeconds();
  stats_.oracle_seconds += oracle_elapsed;
  stats_.batch_oracle_seconds += oracle_elapsed;
  if (!batch_status.ok()) {
    // The run is aborting: even the pairs that did succeed are dropped, so
    // a later re-run pays for them again. Charging a failure per failed
    // pair (not per batch) keeps the counter comparable across transports.
    uint64_t failed = 0;
    for (const Status& s : statuses) {
      if (!s.ok()) ++failed;
    }
    FailTransport(batch_status, failed);
  }
  stats_.oracle_calls += unique.size();
  budget_spent_ += unique.size();
  ++stats_.batch_calls;
  stats_.batch_resolved_pairs += unique.size();
  if (telemetry_ != nullptr) {
    // One latency sample per round-trip (the scalar transport samples per
    // pair inside Distance() instead).
    telemetry_->oracle_latency_seconds.Record(oracle_elapsed);
    TraceEvent event;
    event.kind = TraceEventKind::kBatchShipped;
    event.count = unique.size();
    event.seconds = oracle_elapsed;
    telemetry_->Emit(event);
  }

  std::vector<ResolvedEdge> edges(unique.size());
  for (size_t k = 0; k < unique.size(); ++k) {
    edges[k] = ResolvedEdge{unique[k].i, unique[k].j, distances[k]};
  }
  graph_->InsertEdges(edges);
  Stopwatch bounder_watch;
  bounder_->OnEdgesResolved(edges);
  stats_.bounder_seconds += bounder_watch.ElapsedSeconds();
  if (weak_ != nullptr) {
    for (const ResolvedEdge& e : edges) NotifyWeakResolved(e.u, e.v, e.weight);
  }
}

void BoundedResolver::ResolveAll(std::span<const IdPair> pairs) {
  ResolveUnknown(pairs);
}

std::vector<bool> BoundedResolver::FilterLessThan(
    std::span<const IdPair> pairs, std::span<const double> thresholds) {
  CHECK_EQ(pairs.size(), thresholds.size());
  std::vector<bool> out(pairs.size());
  stats_.comparisons += pairs.size();

  // Cache sweep: answer i == j, already-resolved pairs and the t == +inf
  // short-circuit; everything else survives into the bounder sweep.
  std::vector<size_t> sweep;
  std::vector<IdPair> sweep_pairs;
  std::vector<double> sweep_thresholds;
  for (size_t k = 0; k < pairs.size(); ++k) {
    const IdPair p = pairs[k];
    CHECK_LT(p.i, graph_->num_objects());
    CHECK_LT(p.j, graph_->num_objects());
    const double t = thresholds[k];
    Trace(TraceEventKind::kComparison, p.i, p.j, t);
    if (t == kInfDistance) {
      ++stats_.decided_by_bounds;
      Trace(TraceEventKind::kDecidedByBounds, p.i, p.j, t);
      out[k] = true;
      continue;
    }
    if (p.i == p.j) {
      ++stats_.decided_by_cache;
      Trace(TraceEventKind::kDecidedByCache, p.i, p.j, t);
      out[k] = 0.0 < t;
      continue;
    }
    if (const std::optional<double> cached = graph_->Get(p.i, p.j)) {
      ++stats_.decided_by_cache;
      Trace(TraceEventKind::kDecidedByCache, p.i, p.j, t);
      out[k] = *cached < t;
      continue;
    }
    sweep.push_back(k);
    sweep_pairs.push_back(p);
    sweep_thresholds.push_back(t);
  }

  // Bounder sweep: one DecideBatch over every survivor. Decisions are made
  // before any resolution, so they are independent of the transport.
  std::vector<std::optional<bool>> decided(sweep.size());
  if (!sweep.empty()) {
    ScopedSpan bound_span(telemetry_, "bound", sweep.size());
    stats_.bound_queries += sweep.size();
    Stopwatch watch;
    bounder_->DecideBatch(sweep_pairs, sweep_thresholds, decided);
    stats_.bounder_seconds += watch.ElapsedSeconds();
  }

  // Ship the undecided remainder in one batch, then read the answers back
  // from the cache. Attribution mirrors the scalar LessThan loop: only the
  // first occurrence of an unordered pair actually triggers a resolution
  // (ResolveUnknown dedups); a repeat — duplicate or symmetric — would have
  // hit the cache in the scalar loop, so it is charged to the cache here.
  std::vector<size_t> undecided;
  std::vector<IdPair> remainder;
  std::unordered_set<EdgeKey, EdgeKeyHash> charged;
  if (!PolicyActive()) {
    for (size_t s = 0; s < sweep.size(); ++s) {
      if (decided[s].has_value()) {
        ++stats_.decided_by_bounds;
        Trace(TraceEventKind::kDecidedByBounds, sweep_pairs[s].i,
              sweep_pairs[s].j, sweep_thresholds[s]);
        out[sweep[s]] = *decided[s];
      } else {
        const IdPair p = sweep_pairs[s];
        if (WeakActive()) {
          // No resolution happens during this sweep, so repeats of a pair
          // see the same memoized weak interval and decide identically.
          const std::optional<bool> by_weak = DecideByWeak(
              p.i, p.j, sweep_thresholds[s],
              WeakIntersect(p.i, p.j, SlackBounds(p.i, p.j)));
          if (by_weak.has_value()) {
            out[sweep[s]] = *by_weak;
            continue;
          }
        }
        if (charged.insert(EdgeKey(p.i, p.j)).second) {
          ++stats_.decided_by_oracle;
          // Probe before ResolveUnknown below collapses the interval.
          ProbeBoundGap(p.i, p.j, sweep_thresholds[s]);
          Trace(TraceEventKind::kDecidedByOracle, p.i, p.j,
                sweep_thresholds[s]);
        } else {
          ++stats_.decided_by_cache;
          Trace(TraceEventKind::kDecidedByCache, p.i, p.j,
                sweep_thresholds[s]);
        }
        undecided.push_back(s);
        remainder.push_back(p);
      }
    }
  } else {
    // Approximate mode. Slack-decide every survivor whose interval gap is
    // within eps; then, under a budget, ship only as many *unique* pairs
    // as the remaining budget covers — widest gap first, since a wide
    // interval gains the most information per oracle call — and settle the
    // starved rest by forced slack. Each comparison is attributed exactly
    // once (slack, oracle, or cache), so the counter invariant holds even
    // when the budget runs out partway through the batch.
    struct Pending {
      size_t s;
      Interval b;
      double gap;   // scheme-interval gap: slack decisions, realized error
      double rank;  // weak-informed gap: oracle-budget shipping priority
    };
    std::vector<Pending> pending;
    for (size_t s = 0; s < sweep.size(); ++s) {
      if (decided[s].has_value()) {
        ++stats_.decided_by_bounds;
        Trace(TraceEventKind::kDecidedByBounds, sweep_pairs[s].i,
              sweep_pairs[s].j, sweep_thresholds[s]);
        out[sweep[s]] = *decided[s];
        continue;
      }
      const IdPair p = sweep_pairs[s];
      // No resolution happens during this sweep, so repeats of a pair see
      // the same interval and weak-/slack-decide identically.
      const Interval b = SlackBounds(p.i, p.j);
      Interval eff = b;
      if (WeakActive()) {
        eff = WeakIntersect(p.i, p.j, b);
        const std::optional<bool> by_weak =
            DecideByWeak(p.i, p.j, sweep_thresholds[s], eff);
        if (by_weak.has_value()) {
          out[sweep[s]] = *by_weak;
          continue;
        }
      }
      const double gap = SlackRelativeGap(b);
      if (SlackActive() && gap <= policy_.eps) {
        out[sweep[s]] = DecideBySlack(p.i, p.j, sweep_thresholds[s], b, gap,
                                      /*forced=*/false);
        continue;
      }
      // Slack decisions and their certificates stay on the scheme interval
      // `b`; the weak-intersected interval only *ranks* pairs for the
      // budget below (the pairs weak knowledge helps least ship first).
      pending.push_back({s, b, gap, SlackRelativeGap(eff)});
    }
    std::unordered_set<EdgeKey, EdgeKeyHash> starved;
    if (BudgetActive()) {
      // Budget partition over the unique pending pairs (duplicates of a
      // shipped pair read the cache, costing nothing extra).
      struct Rep {
        EdgeKey key;
        double gap;
      };
      std::vector<Rep> reps;
      std::unordered_set<EdgeKey, EdgeKeyHash> seen;
      for (const Pending& w : pending) {
        const EdgeKey key(sweep_pairs[w.s].i, sweep_pairs[w.s].j);
        if (seen.insert(key).second) reps.push_back({key, w.rank});
      }
      const uint64_t capacity = BudgetRemaining();
      if (reps.size() > capacity) {
        // Stable, so equal gaps keep first-occurrence order and the
        // partition is deterministic.
        std::stable_sort(
            reps.begin(), reps.end(),
            [](const Rep& a, const Rep& b) { return a.gap > b.gap; });
        for (size_t r = capacity; r < reps.size(); ++r) {
          starved.insert(reps[r].key);
        }
      }
    }
    for (const Pending& w : pending) {
      const IdPair p = sweep_pairs[w.s];
      const double t = sweep_thresholds[w.s];
      if (starved.count(EdgeKey(p.i, p.j)) != 0) {
        if (!std::isfinite(w.b.hi)) FailBudget(1);
        out[sweep[w.s]] =
            DecideBySlack(p.i, p.j, t, w.b, w.gap, /*forced=*/true);
        continue;
      }
      if (charged.insert(EdgeKey(p.i, p.j)).second) {
        ++stats_.decided_by_oracle;
        ProbeBoundGap(p.i, p.j, t);
        Trace(TraceEventKind::kDecidedByOracle, p.i, p.j, t);
      } else {
        ++stats_.decided_by_cache;
        Trace(TraceEventKind::kDecidedByCache, p.i, p.j, t);
      }
      undecided.push_back(w.s);
      remainder.push_back(p);
    }
  }
  ResolveUnknown(remainder);
  for (const size_t s : undecided) {
    const IdPair p = sweep_pairs[s];
    out[sweep[s]] = *graph_->Get(p.i, p.j) < sweep_thresholds[s];
  }
  return out;
}

std::vector<bool> BoundedResolver::FilterLessThan(std::span<const IdPair> pairs,
                                                  double t) {
  const std::vector<double> thresholds(pairs.size(), t);
  return FilterLessThan(pairs, thresholds);
}

bool BoundedResolver::PairLess(ObjectId i, ObjectId j, ObjectId k,
                               ObjectId l) {
  ++stats_.comparisons;
  // The event carries the left pair; the comparison has no scalar
  // threshold, so that field stays unset.
  Trace(TraceEventKind::kComparison, i, j, TraceEvent::kUnset);
  const std::optional<double> dij =
      (i == j) ? std::optional<double>(0.0) : graph_->Get(i, j);
  const std::optional<double> dkl =
      (k == l) ? std::optional<double>(0.0) : graph_->Get(k, l);
  if (dij && dkl) {
    ++stats_.decided_by_cache;
    Trace(TraceEventKind::kDecidedByCache, i, j, TraceEvent::kUnset);
    return *dij < *dkl;
  }

  std::optional<bool> decided;
  {
    ++stats_.bound_queries;
    Stopwatch watch;
    if (dkl) {
      // Right side known: `dist(i,j) < t`.
      decided = bounder_->DecideLessThan(i, j, *dkl);
    } else if (dij) {
      // Left side known: `dist(k,l) > t` (not the negation of LessThan —
      // equality must resolve to false here and the scheme must stay exact).
      decided = bounder_->DecideGreaterThan(k, l, *dij);
    } else {
      decided = bounder_->DecidePairLess(i, j, k, l);
    }
    stats_.bounder_seconds += watch.ElapsedSeconds();
  }
  if (decided.has_value()) {
    ++stats_.decided_by_bounds;
    Trace(TraceEventKind::kDecidedByBounds, i, j, TraceEvent::kUnset);
    return *decided;
  }
  if (WeakActive() || PolicyActive()) {
    const Interval bij = dij ? Interval::Exact(*dij) : SlackBounds(i, j);
    const Interval bkl = dkl ? Interval::Exact(*dkl) : SlackBounds(k, l);
    if (WeakActive()) {
      // A cached side is exact; only the unresolved side(s) consult the
      // weak oracle. The decision margin mirrors Bounder::DecidePairLess.
      const Interval eij = dij ? bij : WeakIntersect(i, j, bij);
      const Interval ekl = dkl ? bkl : WeakIntersect(k, l, bkl);
      const double margin =
          BoundDecisionMargin(std::min(eij.hi, ekl.hi) == kInfDistance
                                  ? std::max(eij.lo, ekl.lo)
                                  : std::min(eij.hi, ekl.hi));
      std::optional<bool> by_weak;
      if (eij.hi < ekl.lo - margin) {
        by_weak = true;
      } else if (eij.lo >= ekl.hi + margin) {
        by_weak = false;
      }
      if (by_weak.has_value()) {
        ++stats_.decided_by_weak;
        Trace(TraceEventKind::kDecidedByWeak, i, j, TraceEvent::kUnset);
        const WeakModel mij =
            dij ? WeakModel{*dij, 1.0, 0.0} : weak_->ModelFor(i, j);
        const WeakModel mkl =
            dkl ? WeakModel{*dkl, 1.0, 0.0} : weak_->ModelFor(k, l);
        Stopwatch weak_watch;
        bounder_->ObserveWeakPairLess(i, j, k, l, mij, mkl, *by_weak);
        stats_.bounder_seconds += weak_watch.ElapsedSeconds();
        return *by_weak;
      }
    }
    if (PolicyActive()) {
      // The realized error of a slack pair decision is the worse of the two
      // relative gaps (a cached side is exact: gap 0).
      const double gap =
          std::max(SlackRelativeGap(bij), SlackRelativeGap(bkl));
      bool forced = false;
      bool by_slack = SlackActive() && gap <= policy_.eps;
      if (!by_slack && BudgetActive()) {
        const uint64_t needed = (dij ? 0u : 1u) + (dkl ? 0u : 1u);
        if (BudgetRemaining() < needed) {
          if (!std::isfinite(bij.hi) || !std::isfinite(bkl.hi)) {
            FailBudget(needed);
          }
          by_slack = true;
          forced = true;
        }
      }
      if (by_slack) {
        ++stats_.decided_by_slack;
        if (forced) ++stats_.budget_exhausted;
        if (telemetry_ != nullptr) {
          telemetry_->slack_realized_error.Record(gap);
        }
        Trace(TraceEventKind::kDecidedBySlack, i, j, TraceEvent::kUnset);
        const bool outcome = SlackMidpoint(bij) < SlackMidpoint(bkl);
        Stopwatch watch;
        bounder_->ObserveSlackPairLess(i, j, k, l, bij, bkl, policy_.eps,
                                       outcome);
        stats_.bounder_seconds += watch.ElapsedSeconds();
        return outcome;
      }
    }
  }
  ++stats_.decided_by_oracle;
  Trace(TraceEventKind::kDecidedByOracle, i, j, TraceEvent::kUnset);
  const double a = dij ? *dij : Distance(i, j);
  const double b = dkl ? *dkl : Distance(k, l);
  return a < b;
}

void BoundedResolver::TraceSlow(TraceEventKind kind, ObjectId i, ObjectId j,
                                double threshold) {
  TraceEvent event;
  event.kind = kind;
  event.i = i;
  event.j = j;
  event.threshold = threshold;
  telemetry_->Emit(event);
}

void BoundedResolver::ProbeBoundGapSlow(ObjectId i, ObjectId j, double t) {
  // Stats-neutral observation of the interval the scheme held at the
  // moment a comparison fell through: the bounder is read directly, so
  // bound_queries and bounder_seconds do not move, and reading bounds
  // never resolves anything, so oracle_calls cannot move either — a
  // telemetry-enabled run keeps counters identical to a disabled one
  // (pinned by the trace equivalence test).
  const Interval bounds = bounder_->Bounds(i, j);
  telemetry_->bound_gap.Record(RelativeBoundGap(bounds));
  TraceEvent event;
  event.kind = TraceEventKind::kBoundInterval;
  event.i = i;
  event.j = j;
  event.lb = bounds.lo;
  event.ub = bounds.hi;
  event.threshold = t;
  telemetry_->Emit(event);
}

}  // namespace metricprox
