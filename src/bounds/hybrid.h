#ifndef METRICPROX_BOUNDS_HYBRID_H_
#define METRICPROX_BOUNDS_HYBRID_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "core/bounder.h"
#include "core/types.h"

namespace metricprox {

/// Intersection of two bound schemes: lb = max of the two lower bounds,
/// ub = min of the two upper bounds — valid whenever both inputs are, and
/// at least as tight as either. The practical combination is
/// Tri ∧ LAESA: LAESA contributes strong bounds from the first
/// comparison (its landmark table is global and static), Tri contributes
/// bounds that keep improving as the run resolves distances. Ablation 4
/// (`bench_ablation`) measures whether the combination pays for its double
/// query cost.
class HybridBounder : public Bounder {
 public:
  /// Takes ownership of both schemes. Decision hooks fall back to the
  /// interval defaults over the intersected bounds.
  HybridBounder(std::unique_ptr<Bounder> first,
                std::unique_ptr<Bounder> second)
      : first_(std::move(first)), second_(std::move(second)) {
    CHECK(first_ != nullptr);
    CHECK(second_ != nullptr);
    name_ = std::string(first_->name()) + "+" + std::string(second_->name());
  }

  std::string_view name() const override { return name_; }

  Interval Bounds(ObjectId i, ObjectId j) override {
    const Interval a = first_->Bounds(i, j);
    const Interval b = second_->Bounds(i, j);
    double lo = a.lo > b.lo ? a.lo : b.lo;
    const double hi = a.hi < b.hi ? a.hi : b.hi;
    // Disjoint only through floating-point noise: both contain the truth.
    if (lo > hi) lo = hi;
    return Interval(lo, hi);
  }

  void OnEdgeResolved(ObjectId i, ObjectId j, double d) override {
    first_->OnEdgeResolved(i, j, d);
    second_->OnEdgeResolved(i, j, d);
  }

 private:
  std::unique_ptr<Bounder> first_;
  std::unique_ptr<Bounder> second_;
  std::string name_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_HYBRID_H_
