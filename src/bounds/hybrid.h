#ifndef METRICPROX_BOUNDS_HYBRID_H_
#define METRICPROX_BOUNDS_HYBRID_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "check/certificate.h"
#include "core/bounder.h"
#include "core/types.h"

namespace metricprox {

/// Intersection of two bound schemes: lb = max of the two lower bounds,
/// ub = min of the two upper bounds — valid whenever both inputs are, and
/// at least as tight as either. The practical combination is
/// Tri ∧ LAESA: LAESA contributes strong bounds from the first
/// comparison (its landmark table is global and static), Tri contributes
/// bounds that keep improving as the run resolves distances. Ablation 4
/// (`bench_ablation`) measures whether the combination pays for its double
/// query cost.
class HybridBounder : public Bounder {
 public:
  /// Takes ownership of both schemes. Decision hooks fall back to the
  /// interval defaults over the intersected bounds.
  HybridBounder(std::unique_ptr<Bounder> first,
                std::unique_ptr<Bounder> second)
      : first_(std::move(first)), second_(std::move(second)) {
    CHECK(first_ != nullptr);
    CHECK(second_ != nullptr);
    name_ = std::string(first_->name()) + "+" + std::string(second_->name());
  }

  std::string_view name() const override { return name_; }

  Interval Bounds(ObjectId i, ObjectId j) override {
    const Interval a = first_->Bounds(i, j);
    const Interval b = second_->Bounds(i, j);
    double lo = a.lo > b.lo ? a.lo : b.lo;
    const double hi = a.hi < b.hi ? a.hi : b.hi;
    // Disjoint only through floating-point noise: both contain the truth.
    if (lo > hi) lo = hi;
    return Interval(lo, hi);
  }

  void OnEdgeResolved(ObjectId i, ObjectId j, double d) override {
    first_->OnEdgeResolved(i, j, d);
    second_->OnEdgeResolved(i, j, d);
  }

  /// Certifiable only when both children are: the intersection mirrors
  /// Bounds() exactly (same ternaries, same tie-breaks), carrying over the
  /// winning child's witness per side. With one uncertifiable child we
  /// report no certificate at all rather than a witness for looser bounds —
  /// a hybrid-decided comparison must be provable at the hybrid's own
  /// tightness or any verification failure would be spurious.
  bool CertifyBounds(ObjectId i, ObjectId j,
                     BoundCertificate* cert) override {
    BoundCertificate ca, cb;
    if (!first_->CertifyBounds(i, j, &ca)) return false;
    if (!second_->CertifyBounds(i, j, &cb)) return false;
    const BoundCertificate& lo = ca.lb > cb.lb ? ca : cb;
    const BoundCertificate& up = ca.ub < cb.ub ? ca : cb;
    cert->kind = BoundCertificate::Kind::kInterval;
    cert->lb = lo.lb;
    cert->ub = up.ub;
    if (cert->lb > cert->ub) cert->lb = cert->ub;
    cert->has_upper = up.has_upper;
    cert->upper = up.upper;
    cert->has_lower = lo.has_lower;
    cert->lower = lo.lower;
    return true;
  }

 private:
  std::unique_ptr<Bounder> first_;
  std::unique_ptr<Bounder> second_;
  std::string name_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_HYBRID_H_
