#ifndef METRICPROX_BOUNDS_TLAESA_H_
#define METRICPROX_BOUNDS_TLAESA_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/bounder.h"
#include "core/types.h"
#include "bounds/pivots.h"

namespace metricprox {

/// The TLAESA baseline (Micó, Oncina & Carrasco 1996) adapted as a bound
/// plug-in.
///
/// The original keeps LAESA's base prototypes *and* organizes the search
/// space in a tree; the paper "appropriately adapts" it into a bound scheme
/// without spelling out the adaptation. Ours (documented in DESIGN.md)
/// mirrors that structure: a flat table of `num_base_pivots` max-min base
/// prototypes (exactly LAESA's) plus a binary ball tree built by recursive
/// splitting — each node has a representative object, every object stores
/// its exact oracle distance to the representatives of all of its
/// ancestors, and the child keeping the parent's representative inherits
/// those distances for free. The tree costs roughly (n/2) * depth extra
/// oracle calls (the "tree construction incurs additional distance
/// computations" the paper notes) and pays for itself two ways: common
/// ancestors act as extra pivots through the standard formulas
///     lb = max_p |D(p,i) - D(p,j)|,  ub = min_p (D(p,i) + D(p,j)),
/// and at the pair's divergence node the two sibling representatives —
/// whose inter-distance g was resolved during the split — give the
/// cross-branch wrap bound g - d(i,rep_i) - d(j,rep_j), which is tight
/// exactly where flat landmarks are weakest: pairs in different clusters.
class TlaesaBounder : public Bounder {
 public:
  struct Options {
    /// Base prototypes shared with all pairs (LAESA's landmark table);
    /// 0 = ceil(log2 n).
    uint32_t num_base_pivots = 0;
    /// Stop splitting below this subtree size.
    uint32_t leaf_size = 16;
    /// Hard depth cap (bounds construction cost at n * max_depth calls).
    uint32_t max_depth = 24;
    uint64_t seed = 1;
  };

  /// Builds the tree; `resolve` performs the construction-time oracle calls.
  static std::unique_ptr<TlaesaBounder> Build(ObjectId n,
                                              const Options& options,
                                              const ResolveFn& resolve);

  std::string_view name() const override { return "tlaesa"; }

  Interval Bounds(ObjectId i, ObjectId j) override;
  void OnEdgeResolved(ObjectId, ObjectId, double) override {}

  /// Number of (object, ancestor-representative) distances stored by the
  /// tree (excludes the base-prototype table).
  size_t table_entries() const { return table_entries_; }
  uint32_t num_base_pivots() const { return base_.num_pivots(); }

 private:
  struct PathEntry {
    uint32_t node;        // id of the tree node on this object's root path
    ObjectId rep;         // representative object of that node
    double dist_to_rep;   // exact oracle distance object -> rep
    double sibling_dist;  // rep-to-sibling-rep distance (0 at the root)
  };

  TlaesaBounder() = default;

  PivotTable base_;  // LAESA-style base prototypes
  // paths_[o] lists o's root path, root first.
  std::vector<std::vector<PathEntry>> paths_;
  size_t table_entries_ = 0;

  // Leaf prototypes: each object's nearest tree representative, plus the
  // full inter-prototype distance matrix (the d(t) table real TLAESA
  // maintains). Gives the strong far-pair wrap bound
  //   dist(i,j) >= D(rep_i, rep_j) - d(i,rep_i) - d(j,rep_j).
  std::vector<uint32_t> leaf_rep_index_;  // per object: dense leaf-rep id
  std::vector<double> dist_to_leaf_rep_;  // per object
  std::vector<double> rep_matrix_;        // R x R, row-major
  uint32_t num_leaf_reps_ = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_TLAESA_H_
