#ifndef METRICPROX_BOUNDS_DFT_H_
#define METRICPROX_BOUNDS_DFT_H_

#include <memory>
#include <optional>
#include <string_view>

#include "core/bounder.h"
#include "core/types.h"
#include "graph/partial_graph.h"
#include "lp/metric_lp.h"

namespace metricprox {

/// The paper's DIRECT FEASIBILITY TEST (Section 2.2) as a plug-in.
///
/// Comparisons are decided by LP feasibility over the full triangle-
/// inequality system rather than by interval bounds: `dist(a,b) < dist(c,d)`
/// is certainly true iff the system plus the reversed constraint
/// `x_cd - x_ab <= 0` has no feasible region (and symmetrically for
/// certainly-false). This can decide comparisons that interval schemes
/// cannot, because the two unknowns are constrained *jointly*.
///
/// Bounds() answers with LP-tight intervals (minimize / maximize the
/// variable), primarily for analysis; the resolver's comparison fast path
/// uses the feasibility deciders.
///
/// Cost: the constraint system is rebuilt on each graph change snapshot and
/// every decision solves one or two dense LPs — practical only for graphs
/// with at most a few hundred edges, exactly as reported in the paper.
class DftBounder : public Bounder {
 public:
  /// `max_distance` must upper-bound every true distance (the paper
  /// normalizes distances into [0, 1]).
  DftBounder(const PartialDistanceGraph* graph, double max_distance)
      : graph_(graph), max_distance_(max_distance) {
    CHECK(graph != nullptr);
    CHECK_GT(max_distance, 0.0);
  }

  std::string_view name() const override { return "dft"; }

  Interval Bounds(ObjectId i, ObjectId j) override;
  void OnEdgeResolved(ObjectId, ObjectId, double) override {
    system_.reset();  // snapshot is stale
  }

  std::optional<bool> DecideLessThan(ObjectId i, ObjectId j,
                                     double t) override;
  std::optional<bool> DecideGreaterThan(ObjectId i, ObjectId j,
                                        double t) override;
  std::optional<bool> DecidePairLess(ObjectId i, ObjectId j, ObjectId k,
                                     ObjectId l) override;

  /// Certified forms: identical LP solves and identical decisions; when a
  /// comparison is decided (some completion set found infeasible), the
  /// Farkas multipliers of that very solve are captured into `cert`. The
  /// plain verbs above delegate here with cert == nullptr, so audited and
  /// unaudited runs pivot identically.
  std::optional<bool> DecideLessThanCertified(
      ObjectId i, ObjectId j, double t, BoundCertificate* cert) override;
  std::optional<bool> DecideGreaterThanCertified(
      ObjectId i, ObjectId j, double t, BoundCertificate* cert) override;
  std::optional<bool> DecidePairLessCertified(
      ObjectId i, ObjectId j, ObjectId k, ObjectId l,
      BoundCertificate* cert) override;

  /// Total simplex pivots spent so far (CPU-cost proxy for reports).
  uint64_t total_pivots() const {
    return pivots_ + (system_ ? system_->total_pivots() : 0);
  }

 private:
  MetricFeasibilitySystem& System();

  const PartialDistanceGraph* graph_;  // not owned
  double max_distance_;
  std::unique_ptr<MetricFeasibilitySystem> system_;
  size_t system_edges_ = 0;
  uint64_t pivots_ = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_DFT_H_
