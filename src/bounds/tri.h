#ifndef METRICPROX_BOUNDS_TRI_H_
#define METRICPROX_BOUNDS_TRI_H_

#include <string_view>

#include "check/certificate.h"
#include "core/bounder.h"
#include "core/simd.h"
#include "core/types.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// The paper's Tri Scheme (Algorithm 2): bounds from triangles only.
///
/// For an unknown pair (i, j), every common resolved neighbor c forms a
/// triangle whose two known sides constrain the missing one:
///     lb = max_c |dist(i,c) - dist(j,c)|
///     ub = min_c (dist(i,c) + dist(j,c))
/// Computed by a linear merge over the two sorted adjacency lists, i.e.
/// O(deg(i) + deg(j)); expected O(m/n) per lookup (Theorem 4.2). Updates
/// are the graph insertion itself, so OnEdgeResolved is a no-op here.
///
/// Bounds are looser than SPLUB's (paths longer than 2 are ignored) but the
/// scheme is the paper's recommended practical plug-in for large inputs.
///
/// The paper's Characteristic 1 admits *relaxed* triangle inequalities:
///     dist(i, j) <= rho * (dist(i, c) + dist(c, j)),  rho >= 1
/// (squared Euclidean distance is such a semimetric with rho = 2). Because
/// Tri only ever uses paths of length two, the relaxation enters each bound
/// exactly once:
///     ub = rho * (d(i,c) + d(j,c))
///     lb = max(d(i,c)/rho - d(j,c),  d(j,c)/rho - d(i,c))
/// so a TriBounder constructed with the space's rho stays valid — and the
/// framework's exactness guarantee carries over unchanged. (SPLUB/ADM/DFT
/// compose the inequality along longer paths and require rho = 1.)
class TriBounder : public Bounder {
 public:
  explicit TriBounder(const PartialDistanceGraph* graph, double rho = 1.0)
      : graph_(graph), rho_(rho) {
    CHECK(graph != nullptr);
    CHECK_GE(rho, 1.0) << "relaxation factor must be >= 1";
  }

  std::string_view name() const override { return "tri"; }

  /// Merge-intersects the two SoA adjacency columns and reduces the matched
  /// triangles through the dispatched tri-reduce kernel (bit-identical to
  /// the historical lambda walk on every tier; see core/simd.h). The merge
  /// scratch is a member — per bounder instance, not per thread — so
  /// concurrent sessions each driving their own TriBounder never share
  /// mutable state through the bound path; one TriBounder instance must not
  /// be driven from two threads at once (same contract as the resolver that
  /// owns it).
  Interval Bounds(ObjectId i, ObjectId j) override {
    const PartialDistanceGraph::AdjacencyColumns a = graph_->AdjacencyView(i);
    const PartialDistanceGraph::AdjacencyColumns b = graph_->AdjacencyView(j);
    return simd::TriMergeBounds(a.ids.data(), a.distances.data(),
                                a.ids.size(), b.ids.data(),
                                b.distances.data(), b.ids.size(), rho_,
                                &scratch_);
  }

  void OnEdgeResolved(ObjectId, ObjectId, double) override {}

  /// Same merge as Bounds() with argbest tracking: the interval is
  /// reproduced bit-for-bit, and the best triangle becomes the witness —
  /// the 2-edge path i-c-j for the upper bound, the better-oriented wrap of
  /// one triangle side for the lower bound.
  bool CertifyBounds(ObjectId i, ObjectId j,
                     BoundCertificate* cert) override {
    double lb = 0.0;
    double ub = kInfDistance;
    ObjectId ub_c = kInvalidObject;
    ObjectId lb_c = kInvalidObject;
    bool lb_is_ij = true;
    const double inv_rho = 1.0 / rho_;
    graph_->ForEachCommonNeighbor(
        i, j, [&](ObjectId c, double di, double dj) {
          const double gap_ij = di * inv_rho - dj;
          const double gap_ji = dj * inv_rho - di;
          const double gap = gap_ij > gap_ji ? gap_ij : gap_ji;
          if (gap > lb) {
            lb = gap;
            lb_c = c;
            lb_is_ij = gap_ij > gap_ji;
          }
          const double sum = rho_ * (di + dj);
          if (sum < ub) {
            ub = sum;
            ub_c = c;
          }
        });
    if (lb > ub) lb = ub;
    cert->kind = BoundCertificate::Kind::kInterval;
    cert->lb = lb;
    cert->ub = ub;
    cert->has_upper = ub_c != kInvalidObject;
    if (cert->has_upper) {
      cert->upper.nodes = {i, ub_c, j};
      cert->upper.rho = rho_;
    }
    cert->has_lower = lb_c != kInvalidObject;
    if (cert->has_lower) {
      cert->lower.rho = rho_;
      if (lb_is_ij) {
        // gap_ij = d(i,c)/rho - d(j,c): wrap the edge (i, c).
        cert->lower.u = i;
        cert->lower.v = lb_c;
        cert->lower.path_iu = {i};
        cert->lower.path_vj = {lb_c, j};
      } else {
        // gap_ji = d(c,j)/rho - d(i,c): wrap the edge (c, j).
        cert->lower.u = lb_c;
        cert->lower.v = j;
        cert->lower.path_iu = {i, lb_c};
        cert->lower.path_vj = {j};
      }
    }
    return true;
  }

  double rho() const { return rho_; }

 private:
  const PartialDistanceGraph* graph_;  // not owned
  double rho_;
  simd::TriScratch scratch_;
};

}  // namespace metricprox

#endif  // METRICPROX_BOUNDS_TRI_H_
