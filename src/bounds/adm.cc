#include "bounds/adm.h"

#include "core/logging.h"

namespace metricprox {

AdmBounder::AdmBounder(const PartialDistanceGraph* graph)
    : graph_(graph), n_(graph->num_objects()) {
  CHECK(graph != nullptr);
  ub_.assign(static_cast<size_t>(n_) * n_, kInfDistance);
  for (ObjectId i = 0; i < n_; ++i) ub_[Index(i, i)] = 0.0;
  row_u_.resize(n_);
  row_v_.resize(n_);
  // Fold in any edges resolved before this bounder was attached
  // (e.g. a LAESA bootstrap that pre-populated the graph).
  for (const WeightedEdge& e : graph_->edges()) {
    OnEdgeResolved(e.u, e.v, e.weight);
  }
}

void AdmBounder::OnEdgeResolved(ObjectId u, ObjectId v, double d) {
  DCHECK_NE(u, v);
  if (d >= ub_[Index(u, v)]) return;  // no relaxation possible

  // Snapshot the pre-update rows: the relaxation below must use old values
  // uniformly, and ub_ is mutated in place.
  for (ObjectId a = 0; a < n_; ++a) {
    row_u_[a] = ub_[Index(a, u)];
    row_v_[a] = ub_[Index(a, v)];
  }
  for (ObjectId a = 0; a < n_; ++a) {
    const double au = row_u_[a];
    const double av = row_v_[a];
    // Best way for a to reach the new edge's endpoints.
    const double via_u = au + d;  // a ... u -(d)- v
    const double via_v = av + d;  // a ... v -(d)- u
    double* row = &ub_[Index(a, 0)];
    for (ObjectId b = 0; b < n_; ++b) {
      const double cand1 = via_u + row_v_[b];
      const double cand2 = via_v + row_u_[b];
      const double cand = cand1 < cand2 ? cand1 : cand2;
      if (cand < row[b]) row[b] = cand;
    }
  }
}

Interval AdmBounder::Bounds(ObjectId i, ObjectId j) {
  const double ub = ub_[Index(i, j)];
  double lb = 0.0;
  for (const WeightedEdge& e : graph_->edges()) {
    const double via_uv = e.weight - ub_[Index(i, e.u)] - ub_[Index(e.v, j)];
    const double via_vu = e.weight - ub_[Index(i, e.v)] - ub_[Index(e.u, j)];
    if (via_uv > lb) lb = via_uv;
    if (via_vu > lb) lb = via_vu;
  }
  if (lb > ub) lb = ub;
  return Interval(lb, ub);
}

}  // namespace metricprox
