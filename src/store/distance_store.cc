#include "store/distance_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/logging.h"
#include "store/crc32.h"

namespace metricprox {

namespace {

// On-disk layout (host byte order; the store is a local cache, not a wire
// format). WAL: 24-byte header then 20-byte records, each self-checksummed.
// Snapshot: 32-byte header, 16-byte records sorted by EdgeKey, trailing
// CRC32 over the whole record region.
constexpr char kWalMagic[8] = {'m', 'p', 'x', 'w', 'a', 'l', '1', '\n'};
constexpr char kSnapMagic[8] = {'m', 'p', 'x', 's', 'n', 'a', 'p', '\n'};
constexpr size_t kWalHeaderSize = 24;
constexpr size_t kWalRecordSize = 20;
constexpr size_t kSnapHeaderSize = 32;
constexpr size_t kSnapRecordSize = 16;

void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(char* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutF64(char* p, double v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
double GetF64(const char* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// header := magic[8] | num_objects u32 | identity_hash u64 | crc u32,
/// where crc covers the 12 fingerprint bytes. Shared by both files (the
/// snapshot header adds an edge count before its crc).
void EncodeWalHeader(const StoreFingerprint& fp, char out[kWalHeaderSize]) {
  std::memcpy(out, kWalMagic, sizeof(kWalMagic));
  PutU32(out + 8, fp.num_objects);
  PutU64(out + 12, fp.identity_hash);
  PutU32(out + 20, Crc32(out + 8, 12));
}

void EncodeWalRecord(const WeightedEdge& e, char out[kWalRecordSize]) {
  PutU32(out, e.u);
  PutU32(out + 4, e.v);
  PutF64(out + 8, e.weight);
  PutU32(out + 16, Crc32(out, 16));
}

Status ReadWholeFile(const std::string& path, std::vector<char>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  if (size > 0 && !in.read(out->data(), size)) {
    return Status::IoError("cannot read " + path);
  }
  return Status::OK();
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// fsync of the directory holding `path`, so a just-renamed file survives a
/// crash of the directory metadata too. Best effort: some filesystems reject
/// directory fsync; that is not worth failing a compaction over.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

StoreFingerprint MakeStoreFingerprint(std::string_view identity,
                                      ObjectId num_objects) {
  // FNV-1a over the identity bytes, then a splitmix64 finalizer mixing in
  // the object count, so "n=12" / "n=120" style near-collisions cannot
  // produce equal hashes with equal counts by accident.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : identity) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  uint64_t x = h ^ (0x9e3779b97f4a7c15ULL + num_objects);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return StoreFingerprint{num_objects, x};
}

StatusOr<std::unique_ptr<DistanceStore>> DistanceStore::Open(
    std::string base_path, const StoreFingerprint& fingerprint,
    const StoreOptions& options) {
  if (fingerprint.num_objects == 0) {
    return Status::InvalidArgument("store fingerprint has zero objects");
  }
  std::unique_ptr<DistanceStore> store(
      new DistanceStore(std::move(base_path), fingerprint, options));
  const bool snap_exists =
      std::filesystem::exists(SnapshotPath(store->base_path_));
  const bool wal_exists = std::filesystem::exists(WalPath(store->base_path_));
  if (options.read_only && !snap_exists && !wal_exists) {
    return Status::NotFound("no store at " + store->base_path_ +
                            " (.snap/.wal missing)");
  }
  if (snap_exists) MP_RETURN_IF_ERROR(store->LoadSnapshot());
  if (wal_exists) MP_RETURN_IF_ERROR(store->ReplayWal());
  if (!options.read_only) MP_RETURN_IF_ERROR(store->OpenWalForAppend());
  return store;
}

Status DistanceStore::LoadSnapshot() {
  const std::string path = SnapshotPath(base_path_);
  std::vector<char> bytes;
  MP_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));
  if (bytes.size() < kSnapHeaderSize) {
    return Status::InvalidArgument(path + ": snapshot shorter than header");
  }
  if (std::memcmp(bytes.data(), kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a metricprox snapshot");
  }
  const StoreFingerprint fp{GetU32(bytes.data() + 8), GetU64(bytes.data() + 12)};
  const uint64_t count = GetU64(bytes.data() + 20);
  if (GetU32(bytes.data() + 28) != Crc32(bytes.data() + 8, 20)) {
    return Status::InvalidArgument(path + ": snapshot header CRC mismatch");
  }
  if (fp != fingerprint_) {
    std::ostringstream os;
    os << path << ": fingerprint mismatch (store has n=" << fp.num_objects
       << " hash=" << fp.identity_hash << ", caller expects n="
       << fingerprint_.num_objects << " hash=" << fingerprint_.identity_hash
       << ") — refusing to mix metric spaces";
    return Status::FailedPrecondition(os.str());
  }
  const size_t body = count * kSnapRecordSize;
  if (bytes.size() != kSnapHeaderSize + body + sizeof(uint32_t)) {
    return Status::InvalidArgument(path + ": snapshot size does not match " +
                                   "its edge count");
  }
  const char* records = bytes.data() + kSnapHeaderSize;
  if (GetU32(records + body) != Crc32(records, body)) {
    return Status::InvalidArgument(path + ": snapshot body CRC mismatch");
  }
  edges_.reserve(count);
  for (uint64_t k = 0; k < count; ++k) {
    const char* r = records + k * kSnapRecordSize;
    const ObjectId u = GetU32(r);
    const ObjectId v = GetU32(r + 4);
    const double d = GetF64(r + 8);
    if (u >= v || v >= fingerprint_.num_objects || !(d >= 0.0) ||
        !std::isfinite(d)) {
      return Status::InvalidArgument(path + ": invalid snapshot record");
    }
    if (!edges_.emplace(EdgeKey(u, v), d).second) {
      return Status::InvalidArgument(path + ": duplicate snapshot record");
    }
  }
  snapshot_edges_ = count;
  return Status::OK();
}

Status DistanceStore::ReplayWal() {
  const std::string path = WalPath(base_path_);
  std::vector<char> bytes;
  MP_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));

  if (bytes.size() < kWalHeaderSize) {
    // A crash during the very first header write. There is nothing to
    // salvage; a writable open starts the WAL over, a read-only open just
    // reports the torn bytes.
    counters_.torn_bytes_discarded += bytes.size();
    if (!options_.read_only && !bytes.empty()) {
      std::error_code ec;
      std::filesystem::resize_file(path, 0, ec);
      if (ec) return Status::IoError(path + ": cannot reset torn header");
    }
    return Status::OK();
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a metricprox WAL");
  }
  if (GetU32(bytes.data() + 20) != Crc32(bytes.data() + 8, 12)) {
    return Status::InvalidArgument(path + ": WAL header CRC mismatch");
  }
  const StoreFingerprint fp{GetU32(bytes.data() + 8), GetU64(bytes.data() + 12)};
  if (fp != fingerprint_) {
    std::ostringstream os;
    os << path << ": fingerprint mismatch (store has n=" << fp.num_objects
       << " hash=" << fp.identity_hash << ", caller expects n="
       << fingerprint_.num_objects << " hash=" << fingerprint_.identity_hash
       << ") — refusing to mix metric spaces";
    return Status::FailedPrecondition(os.str());
  }

  // Replay the valid record prefix; the first short or CRC-failing record
  // marks the torn tail left by a crash mid-append.
  size_t offset = kWalHeaderSize;
  while (offset + kWalRecordSize <= bytes.size()) {
    const char* r = bytes.data() + offset;
    if (GetU32(r + 16) != Crc32(r, 16)) break;
    const ObjectId u = GetU32(r);
    const ObjectId v = GetU32(r + 4);
    const double d = GetF64(r + 8);
    if (u == v || u >= fingerprint_.num_objects ||
        v >= fingerprint_.num_objects || !(d >= 0.0) || !std::isfinite(d)) {
      return Status::InvalidArgument(path + ": invalid WAL record");
    }
    const auto [it, inserted] = edges_.emplace(EdgeKey(u, v), d);
    if (!inserted && it->second != d) {
      return Status::InvalidArgument(path + ": conflicting WAL record");
    }
    ++counters_.recovered_records;
    offset += kWalRecordSize;
  }
  if (offset < bytes.size()) {
    counters_.torn_bytes_discarded += bytes.size() - offset;
    if (!options_.read_only) {
      std::error_code ec;
      std::filesystem::resize_file(path, offset, ec);
      if (ec) return Status::IoError(path + ": cannot truncate torn tail");
    }
  }
  wal_record_count_ = counters_.recovered_records;
  return Status::OK();
}

Status DistanceStore::OpenWalForAppend() {
  const std::string path = WalPath(base_path_);
  wal_fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (wal_fd_ < 0) {
    return Status::IoError("cannot open " + path + " for append: " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(wal_fd_, &st) != 0) {
    return Status::IoError("cannot stat " + path);
  }
  if (st.st_size == 0) {
    char header[kWalHeaderSize];
    EncodeWalHeader(fingerprint_, header);
    MP_RETURN_IF_ERROR(WriteAll(wal_fd_, header, sizeof(header)));
    if (::fsync(wal_fd_) != 0) {
      return Status::IoError("fsync failed for " + path);
    }
  }
  return Status::OK();
}

Status DistanceStore::Record(ObjectId i, ObjectId j, double d) {
  CHECK(!closed_) << "Record() on a closed store";
  CHECK_NE(i, j) << "self-edge";
  CHECK_LT(i, fingerprint_.num_objects);
  CHECK_LT(j, fingerprint_.num_objects);
  if (!(d >= 0.0) || !std::isfinite(d)) {
    return Status::InvalidArgument("refusing to store non-metric distance");
  }
  if (options_.read_only) return Status::OK();
  const EdgeKey key(i, j);
  const auto [it, inserted] = edges_.emplace(key, d);
  if (!inserted) {
    // Exact duplicates are free (the caller may re-resolve a pair the store
    // already holds); a *different* distance for a stored pair means the
    // fingerprint failed to pin down the metric space.
    if (it->second != d) {
      return Status::FailedPrecondition(
          "distance conflicts with the stored value for this pair — "
          "the store belongs to a different metric space");
    }
    return Status::OK();
  }
  char record[kWalRecordSize];
  EncodeWalRecord(WeightedEdge{key.lo(), key.hi(), d}, record);
  const Status written = WriteAll(wal_fd_, record, sizeof(record));
  if (!written.ok()) {
    edges_.erase(key);  // keep map and WAL consistent
    return written;
  }
  ++counters_.wal_appends;
  ++wal_record_count_;
  if (options_.fsync_every > 0 &&
      ++appends_since_fsync_ >= options_.fsync_every) {
    MP_RETURN_IF_ERROR(Flush());
  }
  return Status::OK();
}

Status DistanceStore::Flush() {
  if (options_.read_only || wal_fd_ < 0) return Status::OK();
  appends_since_fsync_ = 0;
  if (::fsync(wal_fd_) != 0) {
    return Status::IoError("fsync failed for " + WalPath(base_path_));
  }
  return Status::OK();
}

Status DistanceStore::Compact() {
  CHECK(!closed_) << "Compact() on a closed store";
  if (options_.read_only) {
    return Status::FailedPrecondition("cannot compact a read-only store");
  }
  const std::string snap = SnapshotPath(base_path_);
  const std::string tmp = snap + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp + ": " + std::strerror(errno));
  }
  const std::vector<WeightedEdge> sorted = Edges();
  // Header, then the sorted record region, then its CRC. Buffered in one
  // vector so the CRC and the write are a single pass.
  std::vector<char> bytes(kSnapHeaderSize + sorted.size() * kSnapRecordSize +
                          sizeof(uint32_t));
  std::memcpy(bytes.data(), kSnapMagic, sizeof(kSnapMagic));
  PutU32(bytes.data() + 8, fingerprint_.num_objects);
  PutU64(bytes.data() + 12, fingerprint_.identity_hash);
  PutU64(bytes.data() + 20, sorted.size());
  PutU32(bytes.data() + 28, Crc32(bytes.data() + 8, 20));
  char* records = bytes.data() + kSnapHeaderSize;
  for (size_t k = 0; k < sorted.size(); ++k) {
    char* r = records + k * kSnapRecordSize;
    PutU32(r, sorted[k].u);
    PutU32(r + 4, sorted[k].v);
    PutF64(r + 8, sorted[k].weight);
  }
  const size_t body = sorted.size() * kSnapRecordSize;
  PutU32(records + body, Crc32(records, body));

  Status status = WriteAll(fd, bytes.data(), bytes.size());
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError("fsync failed for " + tmp);
  }
  ::close(fd);
  if (!status.ok()) return status;
  if (std::rename(tmp.c_str(), snap.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp + " over " + snap);
  }
  SyncParentDir(snap);

  // Only now — with every edge durable in the snapshot — is it safe to drop
  // the WAL records. O_APPEND repositions the next write at the new end.
  if (::ftruncate(wal_fd_, static_cast<off_t>(kWalHeaderSize)) != 0) {
    return Status::IoError("cannot truncate " + WalPath(base_path_));
  }
  if (::fsync(wal_fd_) != 0) {
    return Status::IoError("fsync failed for " + WalPath(base_path_));
  }
  snapshot_edges_ = sorted.size();
  wal_record_count_ = 0;
  appends_since_fsync_ = 0;
  ++counters_.compactions;
  if (telemetry_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kCompaction;
    event.count = sorted.size();  // edges now durable in the snapshot
    telemetry_->Emit(event);
  }
  return Status::OK();
}

Status DistanceStore::Close() {
  if (closed_) return Status::OK();
  Status status = Status::OK();
  if (!options_.read_only && wal_fd_ >= 0) {
    if (options_.compact_on_close && wal_record_count_ > 0) {
      status = Compact();
    } else {
      status = Flush();
    }
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
  closed_ = true;
  return status;
}

DistanceStore::~DistanceStore() { Close(); }

std::vector<WeightedEdge> DistanceStore::Edges() const {
  std::vector<WeightedEdge> out;
  out.reserve(edges_.size());
  for (const auto& [key, d] : edges_) {
    out.push_back(WeightedEdge{key.lo(), key.hi(), d});
  }
  std::sort(out.begin(), out.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return EdgeKey(a.u, a.v) < EdgeKey(b.u, b.v);
            });
  return out;
}

StatusOr<StoreFingerprint> DistanceStore::ReadFingerprint(
    const std::string& base_path) {
  for (const std::string& path :
       {SnapshotPath(base_path), WalPath(base_path)}) {
    if (!std::filesystem::exists(path)) continue;
    std::ifstream in(path, std::ios::binary);
    char header[kWalHeaderSize];  // both headers start magic + fingerprint
    if (!in.read(header, sizeof(header))) continue;
    const bool is_snap = std::memcmp(header, kSnapMagic, 8) == 0;
    const bool is_wal = std::memcmp(header, kWalMagic, 8) == 0;
    if (!is_snap && !is_wal) {
      return Status::InvalidArgument(path + ": not a metricprox store file");
    }
    return StoreFingerprint{GetU32(header + 8), GetU64(header + 12)};
  }
  return Status::NotFound("no store at " + base_path + " (.snap/.wal missing)");
}

StatusOr<StoreScanResult> DistanceStore::Scan(const std::string& base_path) {
  StatusOr<StoreFingerprint> fp = ReadFingerprint(base_path);
  if (!fp.ok()) return fp.status();
  StoreOptions options;
  options.read_only = true;
  StatusOr<std::unique_ptr<DistanceStore>> store =
      Open(base_path, *fp, options);
  if (!store.ok()) return store.status();
  StoreScanResult result;
  result.fingerprint = *fp;
  result.has_snapshot = std::filesystem::exists(SnapshotPath(base_path));
  result.has_wal = std::filesystem::exists(WalPath(base_path));
  result.snapshot_edges = (*store)->snapshot_edges_;
  result.wal_records = (*store)->counters_.recovered_records;
  result.unique_edges = (*store)->edges_.size();
  result.torn_tail_bytes = (*store)->counters_.torn_bytes_discarded;
  return result;
}

}  // namespace metricprox
