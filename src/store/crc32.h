#ifndef METRICPROX_STORE_CRC32_H_
#define METRICPROX_STORE_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace metricprox {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte range. Used by the
/// distance-store file formats to detect torn or corrupted records; the table
/// is built at compile time so the store has no dependency on zlib.
namespace internal_crc32 {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace internal_crc32

/// CRC of `size` bytes starting at `data`. `seed` allows incremental use:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b)).
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = internal_crc32::kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace metricprox

#endif  // METRICPROX_STORE_CRC32_H_
