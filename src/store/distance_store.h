#ifndef METRICPROX_STORE_DISTANCE_STORE_H_
#define METRICPROX_STORE_DISTANCE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "obs/telemetry.h"

namespace metricprox {

/// Identity of the metric space a store caches distances for. Every store
/// file carries one; Open() refuses a store whose fingerprint differs from
/// the caller's, so a stale store can never poison a different metric space
/// (wrong dataset, wrong seed, wrong oracle — all change the hash).
struct StoreFingerprint {
  ObjectId num_objects = 0;
  /// Hash of a caller-chosen identity string (see MakeStoreFingerprint).
  uint64_t identity_hash = 0;

  friend bool operator==(const StoreFingerprint& a, const StoreFingerprint& b) {
    return a.num_objects == b.num_objects &&
           a.identity_hash == b.identity_hash;
  }
  friend bool operator!=(const StoreFingerprint& a, const StoreFingerprint& b) {
    return !(a == b);
  }
};

/// Builds a fingerprint from an identity string and the object count. The
/// identity must pin down everything that determines the distances: the
/// oracle's name alone is NOT enough (two Euclidean datasets with the same n
/// but different points share it) — include the dataset name, its generator
/// seed and any parameters, e.g. "dataset=sf;n=256;seed=42;oracle=road".
StoreFingerprint MakeStoreFingerprint(std::string_view identity,
                                      ObjectId num_objects);

struct StoreOptions {
  /// Answer lookups but never write: Record() becomes a no-op, recovery
  /// never truncates a torn WAL tail, and Close() does not compact.
  bool read_only = false;
  /// WAL records buffered between fsyncs. 1 syncs every append (maximum
  /// durability), larger values batch the fsync cost; 0 never syncs
  /// explicitly (the OS flushes eventually — fine for tests and benches).
  size_t fsync_every = 256;
  /// Compact (write a snapshot, truncate the WAL) on Close() when the WAL
  /// holds any records. Tests disable this to exercise WAL replay.
  bool compact_on_close = true;
};

/// Session counters of one open store (all zeroed at Open()).
struct StoreCounters {
  /// Records appended to the WAL this session.
  uint64_t wal_appends = 0;
  /// Snapshot rewrites (explicit Compact() calls plus the one in Close()).
  uint64_t compactions = 0;
  /// WAL records replayed at Open() (the valid prefix).
  uint64_t recovered_records = 0;
  /// Bytes of torn WAL tail discarded at Open() (0 on a clean shutdown).
  uint64_t torn_bytes_discarded = 0;
};

/// Summary of an on-disk store produced by DistanceStore::Scan without
/// knowing its fingerprint in advance (the `mpx store` verbs).
struct StoreScanResult {
  StoreFingerprint fingerprint;
  bool has_snapshot = false;
  bool has_wal = false;
  uint64_t snapshot_edges = 0;
  uint64_t wal_records = 0;
  /// Distinct edges across snapshot + WAL (the warm-start payload).
  uint64_t unique_edges = 0;
  /// Torn WAL tail detected (recoverable: Open() truncates it).
  uint64_t torn_tail_bytes = 0;
};

/// A durable, crash-safe store of oracle-resolved distances, shared across
/// runs and across workloads over the same dataset.
///
/// On disk a store is two files derived from one base path:
///   <base>.snap  — sorted snapshot: header + fixed 16-byte edge records
///                  in EdgeKey order + trailing CRC32, replaced atomically
///                  (write temp, fsync, rename) by Compact();
///   <base>.wal   — append-only write-ahead log: header + fixed 20-byte
///                  records, each carrying its own CRC32; appended (and
///                  periodically fsynced) by Record().
///
/// Crash-safety invariants:
///   * a crash mid-append leaves a torn tail; Open() replays the valid
///     prefix, truncates the tail, and keeps every fully-written record;
///   * the snapshot is only ever replaced by an atomic rename, so readers
///     see the old or the new snapshot, never a partial one;
///   * the WAL is truncated only AFTER the snapshot rename lands, so an
///     edge is always in at least one of the two files (records replayed
///     from both are deduplicated).
///
/// Lookups are answered from an in-memory EdgeKey -> distance map built at
/// Open(); the files are never read on the hot path. Not thread-safe: the
/// resolver drives all oracle verbs from one thread (see core/oracle.h).
class DistanceStore {
 public:
  /// Opens (or, when writable, creates) the store at `base_path`.
  /// Fails with FailedPrecondition if the on-disk fingerprint differs from
  /// `fingerprint`, InvalidArgument on a corrupt snapshot or WAL header, and
  /// NotFound when read-only and neither file exists.
  static StatusOr<std::unique_ptr<DistanceStore>> Open(
      std::string base_path, const StoreFingerprint& fingerprint,
      const StoreOptions& options = {});

  /// Fingerprint recorded in an existing store (snapshot preferred, WAL
  /// otherwise) without opening it. NotFound if neither file exists.
  static StatusOr<StoreFingerprint> ReadFingerprint(
      const std::string& base_path);

  /// Validates an existing store end to end — snapshot magic/CRC, WAL
  /// header, per-record CRCs — and reports its shape. Never modifies files.
  static StatusOr<StoreScanResult> Scan(const std::string& base_path);

  ~DistanceStore();

  DistanceStore(const DistanceStore&) = delete;
  DistanceStore& operator=(const DistanceStore&) = delete;

  /// The stored distance, or nullopt if (i, j) has never been recorded.
  std::optional<double> Lookup(ObjectId i, ObjectId j) const {
    auto it = edges_.find(EdgeKey(i, j));
    if (it == edges_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(ObjectId i, ObjectId j) const {
    return edges_.find(EdgeKey(i, j)) != edges_.end();
  }

  /// Appends dist(i, j) = d to the WAL. A no-op (returning OK) when the pair
  /// is already stored or the store is read-only. CHECK-fails on self-edges
  /// and out-of-range ids; rejects non-finite or negative distances.
  Status Record(ObjectId i, ObjectId j, double d);

  /// Forces buffered WAL appends to disk (fsync).
  Status Flush();

  /// Rewrites the snapshot from the in-memory map (temp + fsync + atomic
  /// rename), then truncates the WAL back to its header. FailedPrecondition
  /// on a read-only store.
  Status Compact();

  /// Compacts (if configured and the WAL holds records), flushes and closes
  /// the WAL. Idempotent; the destructor calls it and ignores the Status.
  Status Close();

  /// All stored edges with u < v, sorted by (u, v) — the deterministic
  /// warm-start payload for PartialDistanceGraph::InsertEdges.
  std::vector<WeightedEdge> Edges() const;

  /// Attaches (or with nullptr, detaches) telemetry: compaction events.
  /// Pure observation.
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

  size_t size() const { return edges_.size(); }
  const StoreFingerprint& fingerprint() const { return fingerprint_; }
  const StoreCounters& counters() const { return counters_; }
  bool read_only() const { return options_.read_only; }
  const std::string& base_path() const { return base_path_; }

  static std::string SnapshotPath(const std::string& base_path) {
    return base_path + ".snap";
  }
  static std::string WalPath(const std::string& base_path) {
    return base_path + ".wal";
  }

 private:
  DistanceStore(std::string base_path, const StoreFingerprint& fingerprint,
                const StoreOptions& options)
      : base_path_(std::move(base_path)),
        fingerprint_(fingerprint),
        options_(options) {}

  /// Loads <base>.snap if present. Sets snapshot_edges_.
  Status LoadSnapshot();
  /// Replays <base>.wal if present, truncating a torn tail when writable.
  Status ReplayWal();
  /// Opens the WAL for appending, writing a fresh header if the file is new.
  Status OpenWalForAppend();

  std::string base_path_;
  StoreFingerprint fingerprint_;
  StoreOptions options_;
  Telemetry* telemetry_ = nullptr;  // not owned; nullptr = telemetry off
  std::unordered_map<EdgeKey, double, EdgeKeyHash> edges_;
  StoreCounters counters_;
  uint64_t snapshot_edges_ = 0;
  /// Records currently sitting in the WAL file (replayed + appended since
  /// the last compaction); Close() compacts only when this is non-zero.
  uint64_t wal_record_count_ = 0;
  size_t appends_since_fsync_ = 0;
  int wal_fd_ = -1;
  bool closed_ = false;
};

}  // namespace metricprox

#endif  // METRICPROX_STORE_DISTANCE_STORE_H_
