#ifndef METRICPROX_STORE_PERSISTENT_ORACLE_H_
#define METRICPROX_STORE_PERSISTENT_ORACLE_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "core/oracle.h"
#include "core/stats.h"
#include "core/status.h"
#include "core/types.h"
#include "obs/telemetry.h"
#include "store/distance_store.h"

namespace metricprox {

/// Persistence middleware: answers from a DistanceStore before touching the
/// inner oracle, and logs every freshly resolved distance to the store's WAL
/// after. Stacks on TOP of the reliability middleware,
///
///   base -> SimulatedCostOracle -> [FaultInjectingOracle] ->
///   [RetryingOracle] -> PersistentOracle -> resolver,
///
/// so a store hit skips the whole stack — no simulated latency, no injected
/// fault, no retry — exactly like a distance that was never requested. The
/// batch verbs split each batch into store hits and a residual miss-batch;
/// only the residual ships to the inner oracle, so cross-run amortization
/// composes with PR 1's one-call-per-unique-pair accounting.
///
/// Store write failures (full disk, revoked permissions) degrade the store
/// to a cache, they do not poison the run: the distance is still returned,
/// the failure is counted, and the first error Status is kept for reporting.
class PersistentOracle : public DistanceOracle {
 public:
  /// Neither pointer is owned. The store's fingerprint must describe the
  /// same universe as the oracle (object counts are CHECKed).
  PersistentOracle(DistanceOracle* base, DistanceStore* store);

  double Distance(ObjectId i, ObjectId j) override;
  void BatchDistance(std::span<const IdPair> pairs,
                     std::span<double> out) override;
  StatusOr<double> TryDistance(ObjectId i, ObjectId j) override;
  Status TryBatchDistance(std::span<const IdPair> pairs, std::span<double> out,
                          std::span<Status> statuses) override;

  ObjectId num_objects() const override { return base_->num_objects(); }
  std::string_view name() const override { return base_->name(); }
  void set_batch_workers(unsigned workers) override {
    base_->set_batch_workers(workers);
  }
  unsigned batch_workers() const override { return base_->batch_workers(); }

  /// Pairs answered from the store without touching the inner oracle.
  uint64_t store_hits() const { return hits_; }
  /// Pairs that had to be resolved by the inner oracle.
  uint64_t store_misses() const { return misses_; }
  /// Misses successfully appended to the store's WAL by this wrapper.
  uint64_t wal_appends() const { return appends_; }
  /// Store writes that failed (the store kept serving as a cache).
  uint64_t store_write_failures() const { return write_failures_; }
  /// First store write failure, OK if none.
  const Status& store_status() const { return store_status_; }

  void ResetCounters() {
    hits_ = misses_ = appends_ = write_failures_ = 0;
    store_status_ = Status::OK();
  }

  /// Merges the persistence counters into a run's ResolverStats (the
  /// harness and the CLI call this once per workload).
  void AccumulateStats(ResolverStats* stats) const;

  /// Attaches (or with nullptr, detaches) telemetry: store-hit and
  /// WAL-append events. Pure observation.
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

 private:
  /// Logs a resolved distance, downgrading write errors to counters.
  void RecordToStore(ObjectId i, ObjectId j, double d);

  /// Emits a kStoreHit event (telemetry attached only).
  void TraceHit(ObjectId i, ObjectId j, double d);

  DistanceOracle* base_;  // not owned
  DistanceStore* store_;  // not owned
  Telemetry* telemetry_ = nullptr;  // not owned; nullptr = telemetry off
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t appends_ = 0;
  uint64_t write_failures_ = 0;
  Status store_status_;
};

}  // namespace metricprox

#endif  // METRICPROX_STORE_PERSISTENT_ORACLE_H_
