#include "store/persistent_oracle.h"

#include <optional>
#include <vector>

#include "core/logging.h"
#include "obs/span.h"

namespace metricprox {

PersistentOracle::PersistentOracle(DistanceOracle* base, DistanceStore* store)
    : base_(base), store_(store) {
  CHECK(base != nullptr);
  CHECK(store != nullptr);
  CHECK_EQ(store->fingerprint().num_objects, base->num_objects())
      << "store fingerprint does not match the oracle's universe";
}

void PersistentOracle::TraceHit(ObjectId i, ObjectId j, double d) {
  TraceEvent event;
  event.kind = TraceEventKind::kStoreHit;
  event.i = i;
  event.j = j;
  event.value = d;
  // Fan-out mirrors the hit into each coalesced waiter's session trace
  // when this oracle sits under a BatchCoalescer ship.
  FanoutEmit(telemetry_, event);
}

void PersistentOracle::RecordToStore(ObjectId i, ObjectId j, double d) {
  if (store_->read_only()) return;
  const Status s = store_->Record(i, j, d);
  if (s.ok()) {
    ++appends_;
    TraceEvent event;
    event.kind = TraceEventKind::kWalAppend;
    event.i = i;
    event.j = j;
    event.value = d;
    FanoutEmit(telemetry_, event);
  } else {
    ++write_failures_;
    if (store_status_.ok()) store_status_ = s;
  }
}

double PersistentOracle::Distance(ObjectId i, ObjectId j) {
  if (const std::optional<double> hit = store_->Lookup(i, j)) {
    ++hits_;
    TraceHit(i, j, *hit);
    return *hit;
  }
  ++misses_;
  const double d = base_->Distance(i, j);
  RecordToStore(i, j, d);
  return d;
}

void PersistentOracle::BatchDistance(std::span<const IdPair> pairs,
                                     std::span<double> out) {
  CHECK_EQ(pairs.size(), out.size());
  // Hit/miss split on the calling thread; only the residual miss-batch
  // ships, so the base keeps its parallel implementation for real work.
  std::vector<size_t> miss_slots;
  std::vector<IdPair> misses;
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (const std::optional<double> hit = store_->Lookup(pairs[k].i, pairs[k].j)) {
      ++hits_;
      TraceHit(pairs[k].i, pairs[k].j, *hit);
      out[k] = *hit;
    } else {
      miss_slots.push_back(k);
      misses.push_back(pairs[k]);
    }
  }
  if (misses.empty()) return;
  misses_ += misses.size();
  std::vector<double> resolved(misses.size());
  base_->BatchDistance(misses, resolved);
  for (size_t m = 0; m < misses.size(); ++m) {
    out[miss_slots[m]] = resolved[m];
    RecordToStore(misses[m].i, misses[m].j, resolved[m]);
  }
}

StatusOr<double> PersistentOracle::TryDistance(ObjectId i, ObjectId j) {
  if (const std::optional<double> hit = store_->Lookup(i, j)) {
    ++hits_;
    TraceHit(i, j, *hit);
    return *hit;
  }
  ++misses_;
  StatusOr<double> resolved = base_->TryDistance(i, j);
  if (resolved.ok()) RecordToStore(i, j, resolved.value());
  return resolved;
}

Status PersistentOracle::TryBatchDistance(std::span<const IdPair> pairs,
                                          std::span<double> out,
                                          std::span<Status> statuses) {
  CHECK_EQ(pairs.size(), out.size());
  CHECK_EQ(pairs.size(), statuses.size());
  std::vector<size_t> miss_slots;
  std::vector<IdPair> misses;
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (const std::optional<double> hit = store_->Lookup(pairs[k].i, pairs[k].j)) {
      ++hits_;
      TraceHit(pairs[k].i, pairs[k].j, *hit);
      out[k] = *hit;
      statuses[k] = Status::OK();
    } else {
      miss_slots.push_back(k);
      misses.push_back(pairs[k]);
    }
  }
  if (misses.empty()) return Status::OK();
  misses_ += misses.size();
  std::vector<double> resolved(misses.size());
  std::vector<Status> miss_statuses(misses.size());
  const Status batch_status =
      base_->TryBatchDistance(misses, resolved, miss_statuses);
  for (size_t m = 0; m < misses.size(); ++m) {
    statuses[miss_slots[m]] = miss_statuses[m];
    if (miss_statuses[m].ok()) {
      out[miss_slots[m]] = resolved[m];
      // Partial successes are persisted even when the batch as a whole
      // failed: a retrying caller re-ships only the failed pairs, and a
      // crashed run replays these from the WAL for free.
      RecordToStore(misses[m].i, misses[m].j, resolved[m]);
    }
  }
  return batch_status;
}

void PersistentOracle::AccumulateStats(ResolverStats* stats) const {
  CHECK(stats != nullptr);
  stats->store_hits += hits_;
  stats->store_misses += misses_;
  stats->wal_appends += appends_;
}

}  // namespace metricprox
