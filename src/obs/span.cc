#include "obs/span.h"

namespace metricprox {

namespace {

std::vector<uint64_t>& SpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

const std::vector<FanoutTarget>*& FanoutSlot() {
  thread_local const std::vector<FanoutTarget>* targets = nullptr;
  return targets;
}

}  // namespace

ScopedSpan::ScopedSpan(Telemetry* telemetry, std::string_view name,
                       uint64_t count)
    : name_(name), count_(count) {
  if (telemetry == nullptr || !telemetry->tracing()) return;
  telemetry_ = telemetry;
  span_id_ = telemetry_->NextSpanId();
  auto& stack = SpanStack();
  parent_ = stack.empty() ? 0 : stack.back();
  stack.push_back(span_id_);

  TraceEvent event;
  event.kind = TraceEventKind::kSpanBegin;
  event.span_id = span_id_;
  event.parent_span_id = parent_;
  event.name = name_;
  event.count = count_;
  telemetry_->Emit(std::move(event));
}

ScopedSpan::~ScopedSpan() {
  if (telemetry_ == nullptr) return;
  auto& stack = SpanStack();
  // Spans are strictly scoped objects, so the innermost open span on this
  // thread is ours.
  if (!stack.empty() && stack.back() == span_id_) stack.pop_back();

  TraceEvent event;
  event.kind = TraceEventKind::kSpanEnd;
  event.span_id = span_id_;
  event.parent_span_id = parent_;
  event.link_span_id = link_span_id_;
  event.name = name_;
  event.count = count_;
  event.seconds = watch_.ElapsedSeconds();
  telemetry_->Emit(std::move(event));
}

uint64_t ScopedSpan::CurrentSpanId() {
  const auto& stack = SpanStack();
  return stack.empty() ? 0 : stack.back();
}

ScopedFanout::ScopedFanout(const std::vector<FanoutTarget>* targets)
    : previous_(FanoutSlot()) {
  FanoutSlot() = targets;
}

ScopedFanout::~ScopedFanout() { FanoutSlot() = previous_; }

void FanoutEmit(Telemetry* primary, const TraceEvent& event) {
  if (primary != nullptr) primary->Emit(event);
  const std::vector<FanoutTarget>* targets = FanoutSlot();
  if (targets == nullptr) return;
  for (const FanoutTarget& target : *targets) {
    if (target.telemetry == nullptr || target.telemetry == primary) continue;
    TraceEvent copy = event;
    if (copy.link_span_id == 0) copy.link_span_id = target.link_span_id;
    target.telemetry->Emit(std::move(copy));
  }
}

}  // namespace metricprox
