#ifndef METRICPROX_OBS_METRICS_H_
#define METRICPROX_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace metricprox {

/// Point-in-time value of one (tenant, session, metric) cell.
struct MetricSample {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  std::string tenant;
  /// 0 = pool-level / tenant rollup (no single session).
  uint64_t session = 0;
  std::string metric;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;         // kCounter
  double gauge = 0.0;           // kGauge
  Histogram::Summary hist;      // kHistogram
};

/// Wire name of a sample kind ("counter", "gauge", "histogram").
std::string_view MetricKindName(MetricSample::Kind kind);

/// Lock-striped live metrics registry keyed by (tenant, session, metric).
///
/// Counters are monotone, gauges are last-write-wins, histograms are the
/// standard log2 Histogram. All operations are safe from any thread; a
/// cell's stripe is chosen by key hash so concurrent sessions touching
/// different cells rarely contend. Snapshot() is consistent per stripe
/// (not globally atomic — fine for monitoring, by design).
///
/// Convention: session 0 holds pool-level / per-tenant rollups; nonzero
/// sessions hold per-session cells. ObservabilityHub samples this into
/// time-series JSONL and a Prometheus-style exposition file.
class MetricsRegistry {
 public:
  static constexpr size_t kDefaultStripes = 16;

  explicit MetricsRegistry(size_t stripes = kDefaultStripes);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void CounterAdd(std::string_view tenant, uint64_t session,
                  std::string_view metric, uint64_t delta = 1);
  void GaugeSet(std::string_view tenant, uint64_t session,
                std::string_view metric, double value);
  void HistogramRecord(std::string_view tenant, uint64_t session,
                       std::string_view metric, double value);

  /// Every cell, sorted by (metric, tenant, session) — deterministic for
  /// tests and stable exposition output.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus-style text exposition of Snapshot(): one `# TYPE` line per
  /// metric family, `mpx_<metric>{tenant=...,session=...}` samples,
  /// histograms as summaries (quantile labels + _sum/_count).
  std::string RenderPrometheus() const;

  /// Appends one time-series JSONL line for Snapshot() — the sampler's
  /// per-tick record (schema "metricprox-metrics").
  void AppendJsonLine(std::string* out, uint64_t tick, uint64_t t_ns) const;

 private:
  struct Cell {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    uint64_t counter = 0;
    double gauge = 0.0;
    Histogram hist;
  };
  struct Stripe {
    mutable std::mutex mu;
    // Ordered so per-stripe iteration is deterministic.
    std::map<std::tuple<std::string, uint64_t, std::string>, Cell> cells;
  };

  Stripe& StripeFor(std::string_view tenant, uint64_t session,
                    std::string_view metric) const;

  size_t num_stripes_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace metricprox

#endif  // METRICPROX_OBS_METRICS_H_
