#ifndef METRICPROX_OBS_FLIGHT_H_
#define METRICPROX_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "obs/trace.h"

namespace metricprox {

/// Tee sink keeping a bounded ring of the most recent trace events (spans
/// included) while forwarding everything to an optional downstream sink.
/// The ring is the pool's "black box": Dump() snapshots it to a JSONL file
/// (schema "metricprox-flight") with the trigger reason in the header, so
/// a stalled or dying run leaves its last moments on disk even when no
/// full --trace was requested.
///
/// Emit is thread-safe (ring and downstream both lock internally) and
/// Dump may race Emit — it writes a consistent snapshot of the ring at the
/// moment it runs.
class FlightRecorder final : public TraceSink {
 public:
  /// `downstream` may be null (record-only). Not owned.
  FlightRecorder(TraceSink* downstream, size_t capacity);

  void Emit(const TraceEvent& event) override;

  /// Writes the ring (oldest first) to `path`: one header line carrying
  /// `reason`, one line per event, one footer line. Each call increments
  /// dumps() regardless of I/O outcome.
  Status Dump(const std::string& path, std::string_view reason);

  std::vector<TraceEvent> Snapshot() const { return ring_.Snapshot(); }

  /// kSpanBegin events seen (the report's spans_emitted stat).
  uint64_t spans_seen() const {
    return spans_seen_.load(std::memory_order_relaxed);
  }
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

 private:
  TraceSink* downstream_;  // not owned; may be null
  RingBufferTraceSink ring_;
  std::atomic<uint64_t> spans_seen_{0};
  std::atomic<uint64_t> dumps_{0};
};

}  // namespace metricprox

#endif  // METRICPROX_OBS_FLIGHT_H_
