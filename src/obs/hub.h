#ifndef METRICPROX_OBS_HUB_H_
#define METRICPROX_OBS_HUB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/stats.h"
#include "core/status.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace metricprox {

/// Configuration of one ObservabilityHub, fixed at construction.
struct ObservabilityHubOptions {
  /// Directory for live artifacts: metrics.jsonl (time-series, one line
  /// per sampler tick), metrics.prom (Prometheus-style exposition,
  /// rewritten each tick — what `mpx obs export` prints), flight-*.jsonl
  /// dumps, and the DUMP_REQUEST sentinel `mpx obs dump` touches. Created
  /// if missing. Empty = no file output (spans and metrics still work
  /// in-process).
  std::string dir;
  /// Metrics sampler period; 0 disables timed ticks (SampleNow() and the
  /// final on-destruction snapshot still run when `dir` is set).
  double metrics_interval_seconds = 0.0;
  /// Flight-recorder ring capacity (most recent trace events kept).
  size_t flight_capacity = 4096;
  /// Watchdog threshold: a coalescer waiter older than
  /// linger_seconds * stall_factor flags a stall episode (one flight dump
  /// + one watchdog_stalls tick per episode). <= 0 disables the watchdog.
  double stall_factor = 8.0;
  /// Cadence of the background thread (watchdog checks + dump-request
  /// sentinel polling); the metrics interval is quantized to it.
  double poll_interval_seconds = 0.02;
  /// Write one final flight dump (reason "exit") at destruction — the
  /// deterministic CI artifact.
  bool dump_on_exit = false;
  /// Default tenant tag for the pool-level bundle.
  std::string tenant = "default";
  std::string trace_id = "pool";
  /// Downstream trace sink behind the flight recorder (the --trace JSONL
  /// sink, a test ring, ...). Not owned; may be null (flight ring only).
  TraceSink* sink = nullptr;
};

/// The live observability root for a run or a session pool: owns the
/// pool-wide TraceClock (one seq / span-id space across every session),
/// the flight-recorder tee in front of the user's trace sink, the
/// MetricsRegistry, and one background thread running the metrics sampler
/// and the stall watchdog.
///
/// Wiring: hand pool_telemetry() to run-level layers (middleware stack,
/// resolver of a single-session run) and SessionTelemetry(id, tenant) to
/// each session; SessionPool does both automatically when its options
/// carry a hub. The hub must outlive every bundle consumer (pool,
/// sessions, middleware).
///
/// Thread-safety: every public method is safe from any thread.
class ObservabilityHub {
 public:
  explicit ObservabilityHub(ObservabilityHubOptions options = {});
  ~ObservabilityHub();

  ObservabilityHub(const ObservabilityHub&) = delete;
  ObservabilityHub& operator=(const ObservabilityHub&) = delete;

  /// The untagged pool/run-level bundle (session_id 0).
  Telemetry* pool_telemetry() { return &pool_telemetry_; }

  /// The session-tagged bundle for `session_id` (created on first use;
  /// stable address for the hub's lifetime). All bundles share the pool
  /// clock and the flight-recorder sink.
  Telemetry* SessionTelemetry(uint64_t session_id, std::string_view tenant);

  MetricsRegistry& metrics() { return metrics_; }
  FlightRecorder& flight() { return flight_; }
  TraceClock& trace_clock() { return clock_; }

  /// Snapshots the flight ring to `<dir>/flight-<reason>-<n>.jsonl`.
  /// No-op (OK) without a directory.
  Status DumpFlight(std::string_view reason);

  /// Registers the watchdog's data source: `oldest_wait_seconds` returns
  /// how long the oldest pending coalescer waiter has been waiting (0 when
  /// idle), `linger_seconds` its allowed linger. SessionPool installs this
  /// when both a hub and a coalescer are configured. The probe must stay
  /// valid until ClearStallProbe() (or hub destruction).
  void SetStallProbe(double linger_seconds,
                     std::function<double()> oldest_wait_seconds);
  void ClearStallProbe();

  /// Registers a gauge sampled into the registry on every tick. `owner`
  /// keys later removal (RemoveGaugeProbes); the probe must stay valid
  /// until then.
  void AddGaugeProbe(const void* owner, std::string tenant, uint64_t session,
                     std::string metric, std::function<double()> probe);
  void RemoveGaugeProbes(const void* owner);

  /// Takes one metrics sample now (timed ticks also call this).
  void SampleNow();

  /// Installs this hub as the process CHECK-failure dump target (the
  /// fatal log hook). Uninstalled automatically at destruction.
  void InstallFatalHook();

  /// Folds the hub's counters (spans_emitted, metrics_samples,
  /// flight_dumps, watchdog_stalls) into `total` for the run report.
  void AccumulateStats(ResolverStats* total) const;

  uint64_t metrics_samples() const {
    return metrics_samples_.load(std::memory_order_relaxed);
  }
  uint64_t watchdog_stalls() const {
    return watchdog_stalls_.load(std::memory_order_relaxed);
  }

  const ObservabilityHubOptions& options() const { return options_; }

 private:
  void BackgroundLoop();
  /// One watchdog check + dump-request poll; returns true if it sampled.
  void PollOnce();
  void WriteMetricsArtifacts(const std::string& json_line);

  ObservabilityHubOptions options_;
  TraceClock clock_;
  FlightRecorder flight_;
  MetricsRegistry metrics_;
  Telemetry pool_telemetry_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::map<uint64_t, std::unique_ptr<Telemetry>> session_telemetry_;
  double stall_linger_seconds_ = 0.0;
  std::function<double()> stall_probe_;
  bool in_stall_ = false;
  struct GaugeProbe {
    const void* owner;
    std::string tenant;
    uint64_t session;
    std::string metric;
    std::function<double()> probe;
  };
  std::vector<GaugeProbe> gauge_probes_;
  double last_sample_elapsed_ = 0.0;

  std::atomic<uint64_t> metrics_samples_{0};
  std::atomic<uint64_t> watchdog_stalls_{0};
  std::atomic<uint64_t> dump_seq_{0};

  std::thread background_;
};

}  // namespace metricprox

#endif  // METRICPROX_OBS_HUB_H_
