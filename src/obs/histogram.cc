#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace metricprox {

namespace {
constexpr size_t kUnderflowBucket = 0;
constexpr size_t kOverflowBucket = Histogram::kNumBuckets - 1;
}  // namespace

size_t Histogram::BucketIndex(double value) {
  // Zero, negatives and sub-2^-64 samples share the underflow bucket; the
  // comparison is written so NaN (filtered by Record) would also land here
  // instead of indexing out of bounds.
  if (!(value > 0.0)) return kUnderflowBucket;
  if (std::isinf(value)) return kOverflowBucket;
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = mantissa * 2^exp
  const int octave = (exp - 1) - kMinExponent;      // value is in [2^(exp-1), 2^exp)
  if (octave < 0) return kUnderflowBucket;
  if (octave >= static_cast<int>(kNumOctaves)) return kOverflowBucket;
  // mantissa is in [0.5, 1); spread it uniformly over the sub-buckets.
  auto sub = static_cast<size_t>((mantissa - 0.5) * 2.0 * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<size_t>(octave) * kSubBuckets + sub;
}

double Histogram::BucketRepresentative(size_t bucket) const {
  // The extreme buckets have no meaningful midpoint; report the exact
  // extremes seen instead.
  if (bucket == kUnderflowBucket) return min_;
  if (bucket == kOverflowBucket) return max_;
  const size_t octave = (bucket - 1) / kSubBuckets;
  const size_t sub = (bucket - 1) % kSubBuckets;
  const int exp = static_cast<int>(octave) + kMinExponent;
  const double mid_mantissa =
      0.5 + 0.5 * (static_cast<double>(sub) + 0.5) / kSubBuckets;
  return std::ldexp(mid_mantissa, exp + 1);  // mid_mantissa * 2^(exp+1)
}

Histogram::Histogram(const Histogram& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  buckets_ = other.buckets_;
  count_ = other.count_;
  min_ = other.min_;
  max_ = other.max_;
  sum_ = other.sum_;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  // Snapshot the source, then overwrite under our own lock; holding both
  // locks at once would need a global order between arbitrary histograms.
  std::array<uint64_t, kNumBuckets> buckets;
  uint64_t count;
  double min, max, sum;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    buckets = other.buckets_;
    count = other.count_;
    min = other.min_;
    max = other.max_;
    sum = other.sum_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  buckets_ = buckets;
  count_ = count;
  min_ = min;
  max_ = max;
  sum_ = sum;
  return *this;
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketIndex(value)];
}

void Histogram::Merge(const Histogram& other) {
  std::array<uint64_t, kNumBuckets> obuckets;
  uint64_t ocount;
  double omin, omax, osum;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    if (other.count_ == 0) return;
    obuckets = other.buckets_;
    ocount = other.count_;
    omin = other.min_;
    omax = other.max_;
    osum = other.sum_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    buckets_ = obuckets;
    count_ = ocount;
    min_ = omin;
    max_ = omax;
    sum_ = osum;
    return;
  }
  for (size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += obuckets[b];
  count_ += ocount;
  sum_ += osum;
  min_ = std::min(min_, omin);
  max_ = std::max(max_, omax);
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QuantileLocked(q);
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample the quantile falls on (1-based, nearest-rank rule).
  const auto rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b];
    if (cumulative >= rank) {
      return std::clamp(BucketRepresentative(b), min_, max_);
    }
  }
  return max_;
}

Histogram::Summary Histogram::Summarize() const {
  std::lock_guard<std::mutex> lock(mu_);
  Summary s;
  s.count = count_;
  s.min = count_ == 0 ? 0.0 : min_;
  s.max = count_ == 0 ? 0.0 : max_;
  s.sum = sum_;
  s.mean = count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  s.p50 = QuantileLocked(0.50);
  s.p90 = QuantileLocked(0.90);
  s.p99 = QuantileLocked(0.99);
  return s;
}

}  // namespace metricprox
