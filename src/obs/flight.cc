#include "obs/flight.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace metricprox {

FlightRecorder::FlightRecorder(TraceSink* downstream, size_t capacity)
    : downstream_(downstream), ring_(capacity) {}

void FlightRecorder::Emit(const TraceEvent& event) {
  if (event.kind == TraceEventKind::kSpanBegin) {
    spans_seen_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_.Emit(event);
  if (downstream_ != nullptr) downstream_->Emit(event);
}

Status FlightRecorder::Dump(const std::string& path, std::string_view reason) {
  dumps_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<TraceEvent> events = ring_.Snapshot();

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open flight dump " + path + ": " +
                           std::strerror(errno));
  }
  std::string out;
  out.append("{\"schema\":\"metricprox-flight\",\"schema_version\":1");
  out.append(",\"reason\":");
  obsjson::AppendString(&out, reason);
  out.append("}\n");
  for (const TraceEvent& event : events) {
    out.append(TraceEventToJson(event));
    out.push_back('\n');
  }
  char footer[64];
  std::snprintf(footer, sizeof(footer),
                "{\"flight_footer\":true,\"events_written\":%" PRIu64 "}\n",
                static_cast<uint64_t>(events.size()));
  out.append(footer);

  Status status;
  if (std::fwrite(out.data(), 1, out.size(), file) != out.size()) {
    status = Status::IoError("short write on flight dump " + path);
  }
  if (std::fclose(file) != 0 && status.ok()) {
    status = Status::IoError("close failed on flight dump " + path);
  }
  return status;
}

}  // namespace metricprox
