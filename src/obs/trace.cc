#include "obs/trace.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstring>

#include "core/logging.h"

namespace metricprox {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kComparison: return "comparison";
    case TraceEventKind::kDecidedByCache: return "decided_by_cache";
    case TraceEventKind::kDecidedByBounds: return "decided_by_bounds";
    case TraceEventKind::kDecidedByOracle: return "decided_by_oracle";
    case TraceEventKind::kUndecided: return "undecided";
    case TraceEventKind::kBoundInterval: return "bound_interval";
    case TraceEventKind::kOracleCall: return "oracle_call";
    case TraceEventKind::kBatchShipped: return "batch_shipped";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kBackoff: return "backoff";
    case TraceEventKind::kStoreHit: return "store_hit";
    case TraceEventKind::kWalAppend: return "wal_append";
    case TraceEventKind::kCompaction: return "compaction";
    case TraceEventKind::kDecidedBySlack: return "decided_by_slack";
    case TraceEventKind::kDecidedByWeak: return "decided_by_weak";
    case TraceEventKind::kSpanBegin: return "span_begin";
    case TraceEventKind::kSpanEnd: return "span_end";
    case TraceEventKind::kCoalesceDedup: return "coalesce_dedup";
  }
  return "unknown";
}

namespace obsjson {

void AppendString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[32];
  // %.17g round-trips any double; shorter representations are preferred
  // automatically when exact.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

namespace {
void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}
}  // namespace

}  // namespace obsjson

std::string TraceEventToJson(const TraceEvent& event) {
  std::string out;
  out.reserve(160);
  out.append("{\"seq\":");
  obsjson::AppendUint(&out, event.seq);
  out.append(",\"t_ns\":");
  obsjson::AppendUint(&out, event.t_ns);
  out.append(",\"kind\":");
  obsjson::AppendString(&out, TraceEventKindName(event.kind));
  const auto field = [&out](const char* name, double value) {
    if (std::isnan(value)) return;
    out.push_back(',');
    out.push_back('"');
    out.append(name);
    out.append("\":");
    obsjson::AppendDouble(&out, value);
  };
  if (event.i != kInvalidObject) {
    out.append(",\"i\":");
    obsjson::AppendUint(&out, event.i);
  }
  if (event.j != kInvalidObject) {
    out.append(",\"j\":");
    obsjson::AppendUint(&out, event.j);
  }
  field("lb", event.lb);
  field("ub", event.ub);
  field("threshold", event.threshold);
  field("value", event.value);
  field("seconds", event.seconds);
  if (event.count > 0) {
    out.append(",\"count\":");
    obsjson::AppendUint(&out, event.count);
  }
  const auto uint_field = [&out](const char* name, uint64_t value) {
    if (value == 0) return;
    out.push_back(',');
    out.push_back('"');
    out.append(name);
    out.append("\":");
    obsjson::AppendUint(&out, value);
  };
  uint_field("span_id", event.span_id);
  uint_field("parent_span_id", event.parent_span_id);
  uint_field("link_span_id", event.link_span_id);
  uint_field("session_id", event.session_id);
  if (!event.name.empty()) {
    out.append(",\"name\":");
    obsjson::AppendString(&out, event.name);
  }
  if (!event.tenant.empty()) {
    out.append(",\"tenant\":");
    obsjson::AppendString(&out, event.tenant);
  }
  out.push_back('}');
  return out;
}

RingBufferTraceSink::RingBufferTraceSink(size_t capacity)
    : capacity_(capacity) {
  CHECK(capacity > 0) << "ring buffer capacity must be positive";
  ring_.reserve(capacity);
}

void RingBufferTraceSink::Emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++emitted_;
}

std::vector<TraceEvent> RingBufferTraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (size_t k = 0; k < ring_.size(); ++k) {
    out.push_back(ring_[(next_ + k) % ring_.size()]);
  }
  return out;
}

uint64_t RingBufferTraceSink::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

uint64_t RingBufferTraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_ > capacity_ ? emitted_ - capacity_ : 0;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path,
                               const std::string& trace_id, uint64_t limit)
    : limit_(limit) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open trace file " + path + ": " +
                              std::strerror(errno));
    return;
  }
  std::string header =
      "{\"schema\":\"metricprox-trace\",\"schema_version\":1,\"trace_id\":";
  obsjson::AppendString(&header, trace_id);
  header.append("}\n");
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    status_ = Status::IoError("cannot write trace header to " + path);
  }
}

JsonlTraceSink::~JsonlTraceSink() { Close(); }

void JsonlTraceSink::Emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr || !status_.ok()) return;
  if (limit_ > 0 && written_ >= limit_) {  // limit 0 = unlimited
    ++dropped_;
    return;
  }
  std::string line = TraceEventToJson(event);
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    status_ = Status::IoError("short write on trace file");
    return;
  }
  ++written_;
}

Status JsonlTraceSink::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return status_;
  if (status_.ok()) {
    std::string footer = "{\"trace_footer\":true,\"events_written\":";
    obsjson::AppendUint(&footer, written_);
    footer.append(",\"events_dropped\":");
    obsjson::AppendUint(&footer, dropped_);
    footer.append("}\n");
    if (std::fwrite(footer.data(), 1, footer.size(), file_) !=
        footer.size()) {
      status_ = Status::IoError("short write on trace footer");
    }
  }
  if (std::fclose(file_) != 0 && status_.ok()) {
    status_ = Status::IoError("close failed on trace file");
  }
  file_ = nullptr;
  return status_;
}

uint64_t JsonlTraceSink::written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

uint64_t JsonlTraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace metricprox
