#include "obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "core/simd.h"
#include "obs/trace.h"

namespace metricprox {

namespace {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatUint(uint64_t value) { return std::to_string(value); }

void AppendKey(std::string* out, bool* first, const char* name) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(name);
  out->append("\":");
}

void AppendField(std::string* out, bool* first, const char* name,
                 uint64_t value) {
  AppendKey(out, first, name);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}

void AppendField(std::string* out, bool* first, const char* name,
                 double value) {
  AppendKey(out, first, name);
  obsjson::AppendDouble(out, value);
}

void AppendField(std::string* out, bool* first, const char* name,
                 const std::string& value) {
  AppendKey(out, first, name);
  obsjson::AppendString(out, value);
}

void AppendField(std::string* out, bool* first, const char* name,
                 bool value) {
  AppendKey(out, first, name);
  out->append(value ? "true" : "false");
}

void AppendHistogram(std::string* out, bool* first, const char* name,
                     const Histogram::Summary& s) {
  AppendKey(out, first, name);
  out->push_back('{');
  bool inner = true;
  AppendField(out, &inner, "count", s.count);
  AppendField(out, &inner, "min", s.min);
  AppendField(out, &inner, "max", s.max);
  AppendField(out, &inner, "sum", s.sum);
  AppendField(out, &inner, "mean", s.mean);
  AppendField(out, &inner, "p50", s.p50);
  AppendField(out, &inner, "p90", s.p90);
  AppendField(out, &inner, "p99", s.p99);
  out->push_back('}');
}

}  // namespace

RunReport::RunReport(RunInfo info, const ResolverStats& stats,
                     const Telemetry* telemetry)
    : info_(std::move(info)), stats_(stats) {
  if (telemetry != nullptr) {
    has_telemetry_ = true;
    oracle_latency_ = telemetry->oracle_latency_seconds.Summarize();
    simulated_cost_ = telemetry->simulated_cost_seconds.Summarize();
    batch_size_ = telemetry->batch_size.Summarize();
    bound_gap_ = telemetry->bound_gap.Summarize();
    slack_error_ = telemetry->slack_realized_error.Summarize();
    weak_width_ = telemetry->weak_interval_width.Summarize();
    if (info_.trace_id.empty()) info_.trace_id = telemetry->trace_id;
  }
}

uint64_t RunReport::AllPairs() const {
  if (info_.n < 2) return 0;
  return static_cast<uint64_t>(info_.n) * (info_.n - 1) / 2;
}

double RunReport::CallsSavedFraction() const {
  const uint64_t all_pairs = AllPairs();
  if (all_pairs == 0) return 0.0;
  return 1.0 - static_cast<double>(stats_.oracle_calls) /
                   static_cast<double>(all_pairs);
}

std::string RunReport::ToText() const {
  const ResolverStats& s = stats_;
  struct Row {
    std::string label;
    std::string value;
  };
  std::vector<Row> rows;
  rows.push_back({"oracle calls", FormatUint(s.oracle_calls)});
  rows.push_back({"all-pairs budget", FormatUint(AllPairs())});
  rows.push_back(
      {"calls saved (%)", FormatDouble(CallsSavedFraction() * 100.0, 2)});
  rows.push_back({"comparisons", FormatUint(s.comparisons)});
  rows.push_back({"decided by bounds", FormatUint(s.decided_by_bounds)});
  rows.push_back({"decided by cache", FormatUint(s.decided_by_cache)});
  rows.push_back({"decided by oracle", FormatUint(s.decided_by_oracle)});
  rows.push_back({"undecided (proof verbs)", FormatUint(s.undecided)});
  if (s.decided_by_slack > 0 || s.budget_exhausted > 0) {
    rows.push_back({"decided by slack", FormatUint(s.decided_by_slack)});
    rows.push_back({"budget exhausted", FormatUint(s.budget_exhausted)});
  }
  if (s.decided_by_weak > 0 || s.weak_calls > 0) {
    rows.push_back({"decided by weak", FormatUint(s.decided_by_weak)});
    rows.push_back({"weak calls", FormatUint(s.weak_calls)});
  }
  rows.push_back(
      {"kernel dispatch",
       std::string(simd::TierName(static_cast<simd::Tier>(
           s.kernel_dispatch <= 2 ? s.kernel_dispatch : 0)))});
  if (s.oracle_retries > 0 || s.oracle_timeouts > 0 ||
      s.oracle_failures > 0) {
    rows.push_back({"oracle retries", FormatUint(s.oracle_retries)});
    rows.push_back({"oracle timeouts", FormatUint(s.oracle_timeouts)});
    rows.push_back({"oracle failures", FormatUint(s.oracle_failures)});
    rows.push_back(
        {"retry backoff (s)", FormatDouble(s.retry_backoff_seconds, 4)});
  }
  if (s.sessions_active > 0 || s.shared_graph_hits > 0 ||
      s.coalesced_batches > 0 || s.cross_session_dedup_hits > 0) {
    rows.push_back({"sessions (peak)", FormatUint(s.sessions_active)});
    rows.push_back({"shared graph hits", FormatUint(s.shared_graph_hits)});
    rows.push_back({"coalesced batches", FormatUint(s.coalesced_batches)});
    rows.push_back({"cross-session dedup hits",
                    FormatUint(s.cross_session_dedup_hits)});
  }
  if (s.spans_emitted > 0 || s.metrics_samples > 0 || s.flight_dumps > 0 ||
      s.watchdog_stalls > 0) {
    rows.push_back({"spans emitted", FormatUint(s.spans_emitted)});
    rows.push_back({"metrics samples", FormatUint(s.metrics_samples)});
    rows.push_back({"flight dumps", FormatUint(s.flight_dumps)});
    rows.push_back({"watchdog stalls", FormatUint(s.watchdog_stalls)});
  }
  if (s.certs_emitted > 0 || s.certs_uncertified > 0) {
    rows.push_back({"certs emitted", FormatUint(s.certs_emitted)});
    rows.push_back({"certs verified", FormatUint(s.certs_verified)});
    rows.push_back({"certs failed", FormatUint(s.certs_failed)});
    rows.push_back({"certs uncertified", FormatUint(s.certs_uncertified)});
  }
  if (info_.have_store) {
    rows.push_back({"store hits", FormatUint(s.store_hits)});
    rows.push_back({"store misses", FormatUint(s.store_misses)});
    rows.push_back({"warm-start edges", FormatUint(s.store_loaded_edges)});
    rows.push_back({"wal appends", FormatUint(s.wal_appends)});
  }
  if (has_telemetry_ && oracle_latency_.count > 0) {
    rows.push_back(
        {"oracle latency p50 (s)", FormatDouble(oracle_latency_.p50, 6)});
    rows.push_back(
        {"oracle latency p90 (s)", FormatDouble(oracle_latency_.p90, 6)});
    rows.push_back(
        {"oracle latency p99 (s)", FormatDouble(oracle_latency_.p99, 6)});
  }
  if (has_telemetry_ && batch_size_.count > 0) {
    rows.push_back({"batch size p50", FormatDouble(batch_size_.p50, 1)});
    rows.push_back({"batch size p99", FormatDouble(batch_size_.p99, 1)});
    rows.push_back({"batch size max", FormatDouble(batch_size_.max, 0)});
  }
  if (has_telemetry_ && bound_gap_.count > 0) {
    rows.push_back({"bound gap p50", FormatDouble(bound_gap_.p50, 4)});
    rows.push_back({"bound gap p90", FormatDouble(bound_gap_.p90, 4)});
    rows.push_back({"bound gap p99", FormatDouble(bound_gap_.p99, 4)});
  }
  if (has_telemetry_ && slack_error_.count > 0) {
    rows.push_back({"slack error p50", FormatDouble(slack_error_.p50, 4)});
    rows.push_back({"slack error p90", FormatDouble(slack_error_.p90, 4)});
    rows.push_back({"slack error p99", FormatDouble(slack_error_.p99, 4)});
    rows.push_back({"slack error max", FormatDouble(slack_error_.max, 4)});
  }
  if (has_telemetry_ && weak_width_.count > 0) {
    rows.push_back({"weak width p50", FormatDouble(weak_width_.p50, 4)});
    rows.push_back({"weak width p90", FormatDouble(weak_width_.p90, 4)});
    rows.push_back({"weak width p99", FormatDouble(weak_width_.p99, 4)});
  }
  rows.push_back({"scheme CPU (s)", FormatDouble(s.bounder_seconds, 4)});
  rows.push_back({"wall time (s)", FormatDouble(info_.wall_seconds, 3)});
  if (info_.oracle_cost_seconds > 0 || s.weak_simulated_seconds > 0) {
    rows.push_back({"simulated oracle time (s)",
                    FormatDouble(s.simulated_oracle_seconds, 1)});
    if (s.weak_simulated_seconds > 0) {
      rows.push_back({"simulated weak time (s)",
                      FormatDouble(s.weak_simulated_seconds, 1)});
    }
    rows.push_back({"completion time (s)",
                    FormatDouble(info_.wall_seconds +
                                     s.simulated_oracle_seconds +
                                     s.weak_simulated_seconds,
                                 1)});
  }

  // TablePrinter-compatible rendering: right-aligned cells, pipe borders,
  // a header row and a dash separator under it.
  size_t label_width = std::string("metric").size();
  size_t value_width = std::string("value").size();
  for (const Row& row : rows) {
    label_width = std::max(label_width, row.label.size());
    value_width = std::max(value_width, row.value.size());
  }
  std::string out = "\nAccounting\n";
  const auto emit = [&](const std::string& label, const std::string& value) {
    out.append("| ");
    out.append(label_width - label.size(), ' ');
    out.append(label);
    out.append(" | ");
    out.append(value_width - value.size(), ' ');
    out.append(value);
    out.append(" |\n");
  };
  emit("metric", "value");
  out.push_back('|');
  out.append(label_width + 2, '-');
  out.push_back('|');
  out.append(value_width + 2, '-');
  out.append("|\n");
  for (const Row& row : rows) emit(row.label, row.value);
  return out;
}

std::string RunReport::ToJson() const {
  std::string out;
  out.reserve(2048);
  out.push_back('{');
  bool first = true;
  AppendField(&out, &first, "schema", std::string("metricprox-run-report"));
  AppendField(&out, &first, "schema_version",
              static_cast<uint64_t>(kSchemaVersion));

  AppendKey(&out, &first, "run");
  {
    out.push_back('{');
    bool inner = true;
    AppendField(&out, &inner, "tool", info_.tool);
    AppendField(&out, &inner, "command", info_.command);
    AppendField(&out, &inner, "dataset", info_.dataset);
    AppendField(&out, &inner, "scheme", info_.scheme);
    AppendField(&out, &inner, "n", static_cast<uint64_t>(info_.n));
    AppendField(&out, &inner, "seed", info_.seed);
    AppendField(&out, &inner, "trace_id", info_.trace_id);
    AppendField(&out, &inner, "have_store", info_.have_store);
    AppendField(&out, &inner, "audit", info_.audit);
    out.push_back('}');
  }

  AppendKey(&out, &first, "timing");
  {
    out.push_back('{');
    bool inner = true;
    AppendField(&out, &inner, "wall_seconds", info_.wall_seconds);
    AppendField(&out, &inner, "oracle_cost_seconds",
                info_.oracle_cost_seconds);
    AppendField(&out, &inner, "completion_seconds",
                info_.wall_seconds + stats_.simulated_oracle_seconds +
                    stats_.weak_simulated_seconds);
    out.push_back('}');
  }

  // One key per X-macro field, in declaration order. telemetry_test pins
  // this object to exactly kResolverStatsFieldCount keys, so a new counter
  // cannot be added without showing up here.
  AppendKey(&out, &first, "stats");
  {
    out.push_back('{');
    bool inner = true;
#define METRICPROX_STATS_JSON_FIELD(type, name) \
  AppendField(&out, &inner, #name, stats_.name);
    METRICPROX_RESOLVER_STATS_FIELDS(METRICPROX_STATS_JSON_FIELD)
#undef METRICPROX_STATS_JSON_FIELD
    out.push_back('}');
  }

  AppendKey(&out, &first, "derived");
  {
    out.push_back('{');
    bool inner = true;
    AppendField(&out, &inner, "all_pairs", AllPairs());
    AppendField(&out, &inner, "calls_saved_fraction", CallsSavedFraction());
    out.push_back('}');
  }

  AppendKey(&out, &first, "telemetry");
  {
    out.push_back('{');
    bool inner = true;
    AppendField(&out, &inner, "enabled", has_telemetry_);
    AppendKey(&out, &inner, "histograms");
    {
      out.push_back('{');
      bool h = true;
      AppendHistogram(&out, &h, "oracle_latency_seconds", oracle_latency_);
      AppendHistogram(&out, &h, "simulated_cost_seconds", simulated_cost_);
      AppendHistogram(&out, &h, "batch_size", batch_size_);
      AppendHistogram(&out, &h, "bound_gap", bound_gap_);
      AppendHistogram(&out, &h, "slack_realized_error", slack_error_);
      AppendHistogram(&out, &h, "weak_interval_width", weak_width_);
      out.push_back('}');
    }
    out.push_back('}');
  }

  out.push_back('}');
  return out;
}

}  // namespace metricprox
