#ifndef METRICPROX_OBS_TELEMETRY_H_
#define METRICPROX_OBS_TELEMETRY_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

#include "core/stats.h"
#include "core/types.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace metricprox {

/// Shared stamping state for a set of Telemetry bundles feeding one sink:
/// one monotonic clock, one run-wide sequence counter and one span-id
/// counter. A multi-session pool hands every session's Telemetry the same
/// TraceClock (see obs/hub.h) so the merged trace keeps the strictly
/// increasing `seq` that tools/validate_telemetry.py requires, and span ids
/// are unique pool-wide.
struct TraceClock {
  Stopwatch clock;
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> next_span{1};  // 0 is reserved for "no span"
};

/// The per-run telemetry bundle: a trace sink plus the standard histograms.
///
/// Instrumented layers (BoundedResolver, the oracle middleware stack,
/// DistanceStore) hold a raw `Telemetry*` that defaults to nullptr; every
/// instrumentation site sits behind a single pointer check, so a run with
/// no telemetry attached does no extra work beyond that branch — and, by
/// construction, issues zero extra oracle calls either way (probes only
/// read bounds, never resolve). The traced-vs-untraced equivalence test
/// pins both properties.
///
/// Histograms fill whenever a Telemetry is attached, even with no sink
/// (the `--stats-json` without `--trace` case). Events only flow when a
/// sink is set.
///
/// Thread-safety: Emit is safe from batch-transport worker threads and
/// from concurrent sessions (the sequence counter is atomic, sinks lock
/// internally, and since obs v2 the histograms are internally synchronized
/// too, so one bundle may legally be shared by a whole SessionPool).
struct Telemetry {
  /// Destination for trace events; not owned; nullptr disables tracing.
  TraceSink* sink = nullptr;
  /// Identifier stamped into the trace header and the run report.
  std::string trace_id = "run";
  /// Shared stamping state; not owned; nullptr = use this bundle's private
  /// clock (the single-run default). ObservabilityHub points every session
  /// bundle at one pool-wide TraceClock.
  TraceClock* shared_clock = nullptr;
  /// Session/tenant identity stamped onto every emitted event that does
  /// not already carry one. 0/empty = untagged single-run telemetry.
  uint64_t session_id = 0;
  std::string tenant;

  /// Wall-clock latency of each scalar oracle resolution and each batch
  /// round-trip, in seconds.
  Histogram oracle_latency_seconds;
  /// Simulated per-pair cost accrued by SimulatedCostOracle, in seconds.
  Histogram simulated_cost_seconds;
  /// Unique unresolved pairs per resolver batch (both transports: this
  /// measures the algorithm's batching structure, not the wire).
  Histogram batch_size;
  /// Relative bound gap (ub - lb) / ub observed at the moment a comparison
  /// fell through to the oracle (or a proof verb gave up) — the paper's
  /// bound-tightness story as a distribution.
  Histogram bound_gap;
  /// Realized relative error of each slack-decided comparison under an
  /// approximate ResolutionPolicy: the interval's relative gap at decision
  /// time. Bounded by eps except for budget-forced decisions.
  Histogram slack_realized_error;
  /// Relative gap (SlackRelativeGap) of the weak oracle's certified
  /// interval [max(0, w - floor)/alpha, (w + floor)*alpha], one sample per
  /// weak consult. With floor = 0 the gap is exactly 1 - 1/alpha^2, so the
  /// histogram reads back the alpha the workload *needed*: pick alpha ~
  /// 1/sqrt(1 - g) for a target gap quantile g (see PRACTITIONERS.md).
  Histogram weak_interval_width;

  /// Stamps the sequence number, monotonic timestamp and (when unset) the
  /// session/tenant identity, then forwards to the sink. No-op without a
  /// sink.
  void Emit(TraceEvent event) {
    if (sink == nullptr) return;
    TraceClock& tc = shared_clock != nullptr ? *shared_clock : own_clock_;
    event.seq = tc.seq.fetch_add(1, std::memory_order_relaxed);
    event.t_ns = static_cast<uint64_t>(tc.clock.ElapsedSeconds() * 1e9);
    if (event.session_id == 0) event.session_id = session_id;
    if (event.tenant.empty()) event.tenant = tenant;
    sink->Emit(event);
  }

  /// Fresh span id, unique across every bundle sharing this clock.
  uint64_t NextSpanId() {
    TraceClock& tc = shared_clock != nullptr ? *shared_clock : own_clock_;
    return tc.next_span.fetch_add(1, std::memory_order_relaxed);
  }

  bool tracing() const { return sink != nullptr; }

 private:
  TraceClock own_clock_;
};

/// Relative width of a bound interval against the threshold-free scale of
/// its own upper bound, clamped into [0, 1]. Uninformative intervals
/// (infinite or non-positive upper bound) report 1.0 — "the bounds said
/// nothing".
inline double RelativeBoundGap(const Interval& bounds) {
  if (!std::isfinite(bounds.hi) || bounds.hi <= 0.0) return 1.0;
  const double lb = std::max(bounds.lo, 0.0);
  return std::clamp((bounds.hi - lb) / bounds.hi, 0.0, 1.0);
}

}  // namespace metricprox

#endif  // METRICPROX_OBS_TELEMETRY_H_
