#ifndef METRICPROX_OBS_TELEMETRY_H_
#define METRICPROX_OBS_TELEMETRY_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

#include "core/stats.h"
#include "core/types.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace metricprox {

/// The per-run telemetry bundle: a trace sink plus the standard histograms.
///
/// Instrumented layers (BoundedResolver, the oracle middleware stack,
/// DistanceStore) hold a raw `Telemetry*` that defaults to nullptr; every
/// instrumentation site sits behind a single pointer check, so a run with
/// no telemetry attached does no extra work beyond that branch — and, by
/// construction, issues zero extra oracle calls either way (probes only
/// read bounds, never resolve). The traced-vs-untraced equivalence test
/// pins both properties.
///
/// Histograms fill whenever a Telemetry is attached, even with no sink
/// (the `--stats-json` without `--trace` case). Events only flow when a
/// sink is set.
///
/// Thread-safety: Emit is safe from batch-transport worker threads (the
/// sequence counter is atomic and sinks lock internally). The histograms
/// are not internally synchronized — layers record into them only from
/// the calling thread, mirroring how ResolverStats is maintained; code
/// running on workers should use worker-local Histogram instances and
/// Merge them (see core/parallel.h for the worker model).
struct Telemetry {
  /// Destination for trace events; not owned; nullptr disables tracing.
  TraceSink* sink = nullptr;
  /// Identifier stamped into the trace header and the run report.
  std::string trace_id = "run";

  /// Wall-clock latency of each scalar oracle resolution and each batch
  /// round-trip, in seconds.
  Histogram oracle_latency_seconds;
  /// Simulated per-pair cost accrued by SimulatedCostOracle, in seconds.
  Histogram simulated_cost_seconds;
  /// Unique unresolved pairs per resolver batch (both transports: this
  /// measures the algorithm's batching structure, not the wire).
  Histogram batch_size;
  /// Relative bound gap (ub - lb) / ub observed at the moment a comparison
  /// fell through to the oracle (or a proof verb gave up) — the paper's
  /// bound-tightness story as a distribution.
  Histogram bound_gap;
  /// Realized relative error of each slack-decided comparison under an
  /// approximate ResolutionPolicy: the interval's relative gap at decision
  /// time. Bounded by eps except for budget-forced decisions.
  Histogram slack_realized_error;
  /// Relative gap (SlackRelativeGap) of the weak oracle's certified
  /// interval [max(0, w - floor)/alpha, (w + floor)*alpha], one sample per
  /// weak consult. With floor = 0 the gap is exactly 1 - 1/alpha^2, so the
  /// histogram reads back the alpha the workload *needed*: pick alpha ~
  /// 1/sqrt(1 - g) for a target gap quantile g (see PRACTITIONERS.md).
  Histogram weak_interval_width;

  /// Stamps the sequence number and monotonic timestamp, then forwards to
  /// the sink. No-op without a sink.
  void Emit(TraceEvent event) {
    if (sink == nullptr) return;
    event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    event.t_ns = static_cast<uint64_t>(clock_.ElapsedSeconds() * 1e9);
    sink->Emit(event);
  }

  bool tracing() const { return sink != nullptr; }

 private:
  Stopwatch clock_;
  std::atomic<uint64_t> seq_{0};
};

/// Relative width of a bound interval against the threshold-free scale of
/// its own upper bound, clamped into [0, 1]. Uninformative intervals
/// (infinite or non-positive upper bound) report 1.0 — "the bounds said
/// nothing".
inline double RelativeBoundGap(const Interval& bounds) {
  if (!std::isfinite(bounds.hi) || bounds.hi <= 0.0) return 1.0;
  const double lb = std::max(bounds.lo, 0.0);
  return std::clamp((bounds.hi - lb) / bounds.hi, 0.0, 1.0);
}

}  // namespace metricprox

#endif  // METRICPROX_OBS_TELEMETRY_H_
