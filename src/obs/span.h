#ifndef METRICPROX_OBS_SPAN_H_
#define METRICPROX_OBS_SPAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/stats.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace metricprox {

/// RAII causal span: emits kSpanBegin at construction and kSpanEnd (with
/// the measured duration) at destruction. Parenting is implicit: each
/// thread keeps a stack of open spans, and a new span's parent is the
/// innermost open span on the constructing thread — so the session-side
/// chain resolve -> bound -> coalesce_submit -> oracle_rtt nests without
/// any context threading, while the coalescer's flusher-side batch_ship
/// span is a root on its own thread and is reached from waiter traces via
/// TraceEvent::link_span_id instead.
///
/// A null telemetry (or one with no sink) makes the span fully inert: no
/// ids are allocated, nothing is pushed on the thread's stack, and both
/// events are skipped — the traced-vs-untraced A/B stays byte-identical.
class ScopedSpan {
 public:
  /// `name` is the span vocabulary word ("resolve", "bound",
  /// "coalesce_submit", "batch_ship", "oracle_rtt"); `count` is the
  /// span's cardinality (pairs in flight), re-emittable via set_count.
  ScopedSpan(Telemetry* telemetry, std::string_view name, uint64_t count = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// 0 when inert.
  uint64_t id() const { return span_id_; }
  bool active() const { return telemetry_ != nullptr; }

  /// Cross-trace causal link carried on the span_end event: a waiter's
  /// oracle_rtt span links to the batch_ship span that carried its pairs.
  void set_link(uint64_t link_span_id) { link_span_id_ = link_span_id; }
  /// Updates the cardinality reported on the span_end event.
  void set_count(uint64_t count) { count_ = count; }

  /// The calling thread's innermost open span id (0 = none).
  static uint64_t CurrentSpanId();

 private:
  Telemetry* telemetry_ = nullptr;  // not owned; nullptr = inert
  std::string name_;
  uint64_t span_id_ = 0;
  uint64_t parent_ = 0;
  uint64_t link_span_id_ = 0;
  uint64_t count_ = 0;
  Stopwatch watch_;
};

/// One mirror destination for FanoutEmit: a (session-tagged) Telemetry
/// bundle plus the ship-span id its copies should link to.
struct FanoutTarget {
  Telemetry* telemetry = nullptr;  // not owned
  uint64_t link_span_id = 0;
};

/// Installs a fan-out target list on the calling thread for its lifetime
/// (restoring the previous list on destruction). The BatchCoalescer's
/// flusher wraps each base round-trip in one of these, listing every
/// waiter session's bundle — so oracle_call / retry / backoff / store
/// events emitted by the middleware stack during that round-trip are
/// mirrored to every coalesced waiter, not just the shipping thread.
class ScopedFanout {
 public:
  /// `targets` is borrowed and must outlive the scope.
  explicit ScopedFanout(const std::vector<FanoutTarget>* targets);
  ~ScopedFanout();

  ScopedFanout(const ScopedFanout&) = delete;
  ScopedFanout& operator=(const ScopedFanout&) = delete;

 private:
  const std::vector<FanoutTarget>* previous_;
};

/// Emits `event` through `primary` (when non-null), then mirrors a copy to
/// every ambient fan-out target on this thread (skipping `primary` itself).
/// Each copy picks up the target bundle's session/tenant tag in Emit and,
/// when the event carries no link yet, the target's link_span_id.
void FanoutEmit(Telemetry* primary, const TraceEvent& event);

}  // namespace metricprox

#endif  // METRICPROX_OBS_SPAN_H_
