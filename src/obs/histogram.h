#ifndef METRICPROX_OBS_HISTOGRAM_H_
#define METRICPROX_OBS_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace metricprox {

/// Fixed-bucket log-scale histogram for positive measurements (latencies,
/// batch sizes, relative bound gaps).
///
/// Bucket layout: each power-of-two octave [2^e, 2^(e+1)) is split into
/// kSubBuckets equal-width sub-buckets, for exponents covering
/// [2^-64, 2^64) — wide enough for nanosecond latencies and billion-pair
/// batch sizes alike, with relative error bounded by 1/kSubBuckets per
/// octave. One underflow bucket catches zero, negatives and anything below
/// 2^-64; one overflow bucket catches +inf and anything at or above 2^64.
/// NaN samples are dropped.
///
/// The layout is identical for every instance, so worker-local histograms
/// merge with plain bucket addition (Merge below) — the same reduction
/// pattern the batch transport already uses for worker-local rows in
/// core/parallel.h. Merging is associative and commutative on bucket
/// counts, count, sum, min and max.
///
/// Quantiles walk the cumulative bucket counts and return the bucket's
/// geometric midpoint clamped into [min, max], so a single-sample histogram
/// reports that sample exactly and an empty histogram reports 0.0 — never
/// NaN.
///
/// Thread-safety: every operation (Record, Merge, quantiles, accessors,
/// copies) is internally synchronized, so one histogram may be fed by
/// concurrent sessions sharing a Telemetry bundle. Merge snapshots the
/// source before touching the destination and never holds both locks.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  static constexpr size_t kSubBuckets = 4;
  static constexpr int kMinExponent = -64;  // first octave is [2^-64, 2^-63)
  static constexpr int kMaxExponent = 63;   // last octave is [2^63, 2^64)
  static constexpr size_t kNumOctaves =
      static_cast<size_t>(kMaxExponent - kMinExponent + 1);
  /// Underflow + octave sub-buckets + overflow.
  static constexpr size_t kNumBuckets = kNumOctaves * kSubBuckets + 2;

  /// Adds one sample. NaN is dropped; zero/negative land in underflow.
  void Record(double value);

  /// Adds another histogram's samples into this one (bucket-wise).
  void Merge(const Histogram& other);

  /// Value at quantile q in [0, 1] (clamped). Empty histogram: 0.0.
  double Quantile(double q) const;

  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  /// Smallest / largest recorded sample (exact, not bucketed). 0.0 if empty.
  double min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : max_;
  }
  /// Sum of all recorded samples (exact). 0.0 if empty.
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Point-in-time digest, safe to keep after the histogram is gone.
  struct Summary {
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  Summary Summarize() const;

 private:
  static size_t BucketIndex(double value);
  /// Representative value reported for a bucket, before min/max clamping.
  double BucketRepresentative(size_t bucket) const;
  /// Quantile walk; caller holds mu_.
  double QuantileLocked(double q) const;

  mutable std::mutex mu_;
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace metricprox

#endif  // METRICPROX_OBS_HISTOGRAM_H_
