#ifndef METRICPROX_OBS_REPORT_H_
#define METRICPROX_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/types.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"

namespace metricprox {

/// Run-level metadata that is not a resolver counter: what ran, over what,
/// and how long it took.
struct RunInfo {
  std::string tool = "mpx";
  std::string command;
  std::string dataset;
  std::string scheme;
  ObjectId n = 0;
  uint64_t seed = 0;
  std::string trace_id;
  bool have_store = false;
  bool audit = false;
  /// Simulated per-call oracle cost (the --oracle-cost flag); gates the
  /// completion-time rows exactly like the old printf block did.
  double oracle_cost_seconds = 0.0;
  double wall_seconds = 0.0;
};

/// One run's accounting, renderable as a human table or as versioned JSON.
///
/// Both renderers read the same captured ResolverStats (whose fields come
/// from the METRICPROX_RESOLVER_STATS_FIELDS X-macro), so the human and
/// machine outputs cannot disagree: the JSON `stats` object carries exactly
/// one key per X-macro field — pinned by telemetry_test — and the text
/// table is a curated view over the same struct.
///
/// The text renderer reproduces the TablePrinter pipe format
/// (`| label | value |`, right-aligned) so downstream `awk -F'|'` parsers
/// of the mpx "Accounting" block keep working unchanged.
class RunReport {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Captures everything by value; `telemetry` may be nullptr (histogram
  /// summaries then report zero counts and the JSON says enabled=false).
  RunReport(RunInfo info, const ResolverStats& stats,
            const Telemetry* telemetry);

  /// The "Accounting" table, including the leading "\nAccounting" title
  /// and trailing newline, ready for fputs.
  std::string ToText() const;

  /// Versioned single-object JSON document (no trailing newline).
  std::string ToJson() const;

  const RunInfo& info() const { return info_; }
  const ResolverStats& stats() const { return stats_; }

 private:
  uint64_t AllPairs() const;
  double CallsSavedFraction() const;

  RunInfo info_;
  ResolverStats stats_;
  bool has_telemetry_ = false;
  Histogram::Summary oracle_latency_;
  Histogram::Summary simulated_cost_;
  Histogram::Summary batch_size_;
  Histogram::Summary bound_gap_;
  Histogram::Summary slack_error_;
  Histogram::Summary weak_width_;
};

}  // namespace metricprox

#endif  // METRICPROX_OBS_REPORT_H_
