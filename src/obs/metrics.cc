#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <tuple>

#include "core/logging.h"
#include "obs/trace.h"

namespace metricprox {

namespace {

void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}

/// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; anything else
/// becomes '_' so arbitrary registry keys stay lintable.
void AppendPromName(std::string* out, std::string_view metric) {
  out->append("mpx_");
  for (const char c : metric) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out->push_back(ok ? c : '_');
  }
}

/// Label values escape \, " and newline per the exposition format.
void AppendPromLabelValue(std::string* out, std::string_view value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '\\': out->append("\\\\"); break;
      case '"': out->append("\\\""); break;
      case '\n': out->append("\\n"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendPromLabels(std::string* out, const MetricSample& s,
                      const char* extra_key = nullptr,
                      const char* extra_value = nullptr) {
  out->append("{tenant=");
  AppendPromLabelValue(out, s.tenant);
  out->append(",session=\"");
  AppendUint(out, s.session);
  out->push_back('"');
  if (extra_key != nullptr) {
    out->push_back(',');
    out->append(extra_key);
    out->push_back('=');
    out->push_back('"');
    out->append(extra_value);
    out->push_back('"');
  }
  out->push_back('}');
}

void AppendPromValue(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

}  // namespace

std::string_view MetricKindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

MetricsRegistry::MetricsRegistry(size_t stripes)
    : num_stripes_(stripes == 0 ? 1 : stripes),
      stripes_(new Stripe[num_stripes_]) {}

MetricsRegistry::Stripe& MetricsRegistry::StripeFor(
    std::string_view tenant, uint64_t session, std::string_view metric) const {
  size_t h = std::hash<std::string_view>{}(tenant);
  h = h * 1000003u + std::hash<uint64_t>{}(session);
  h = h * 1000003u + std::hash<std::string_view>{}(metric);
  return stripes_[h % num_stripes_];
}

void MetricsRegistry::CounterAdd(std::string_view tenant, uint64_t session,
                                 std::string_view metric, uint64_t delta) {
  Stripe& stripe = StripeFor(tenant, session, metric);
  std::lock_guard<std::mutex> lock(stripe.mu);
  Cell& cell = stripe.cells[{std::string(tenant), session,
                             std::string(metric)}];
  cell.kind = MetricSample::Kind::kCounter;
  cell.counter += delta;
}

void MetricsRegistry::GaugeSet(std::string_view tenant, uint64_t session,
                               std::string_view metric, double value) {
  Stripe& stripe = StripeFor(tenant, session, metric);
  std::lock_guard<std::mutex> lock(stripe.mu);
  Cell& cell = stripe.cells[{std::string(tenant), session,
                             std::string(metric)}];
  cell.kind = MetricSample::Kind::kGauge;
  cell.gauge = value;
}

void MetricsRegistry::HistogramRecord(std::string_view tenant,
                                      uint64_t session,
                                      std::string_view metric, double value) {
  Stripe& stripe = StripeFor(tenant, session, metric);
  std::lock_guard<std::mutex> lock(stripe.mu);
  Cell& cell = stripe.cells[{std::string(tenant), session,
                             std::string(metric)}];
  cell.kind = MetricSample::Kind::kHistogram;
  cell.hist.Record(value);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    for (const auto& [key, cell] : stripes_[s].cells) {
      MetricSample sample;
      sample.tenant = std::get<0>(key);
      sample.session = std::get<1>(key);
      sample.metric = std::get<2>(key);
      sample.kind = cell.kind;
      sample.counter = cell.counter;
      sample.gauge = cell.gauge;
      sample.hist = cell.hist.Summarize();
      out.push_back(std::move(sample));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return std::tie(a.metric, a.tenant, a.session) <
                     std::tie(b.metric, b.tenant, b.session);
            });
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string out;
  std::string last_metric;
  for (const MetricSample& s : samples) {
    if (s.metric != last_metric) {
      last_metric = s.metric;
      out.append("# TYPE ");
      AppendPromName(&out, s.metric);
      out.push_back(' ');
      // Log2 histograms export as Prometheus summaries (quantile labels).
      out.append(s.kind == MetricSample::Kind::kHistogram
                     ? "summary"
                     : std::string(MetricKindName(s.kind)));
      out.push_back('\n');
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        AppendPromName(&out, s.metric);
        AppendPromLabels(&out, s);
        out.push_back(' ');
        AppendUint(&out, s.counter);
        out.push_back('\n');
        break;
      case MetricSample::Kind::kGauge:
        AppendPromName(&out, s.metric);
        AppendPromLabels(&out, s);
        out.push_back(' ');
        AppendPromValue(&out, s.gauge);
        out.push_back('\n');
        break;
      case MetricSample::Kind::kHistogram: {
        const struct {
          const char* label;
          double value;
        } quantiles[] = {{"0.5", s.hist.p50},
                         {"0.9", s.hist.p90},
                         {"0.99", s.hist.p99}};
        for (const auto& q : quantiles) {
          AppendPromName(&out, s.metric);
          AppendPromLabels(&out, s, "quantile", q.label);
          out.push_back(' ');
          AppendPromValue(&out, q.value);
          out.push_back('\n');
        }
        AppendPromName(&out, s.metric);
        out.append("_sum");
        AppendPromLabels(&out, s);
        out.push_back(' ');
        AppendPromValue(&out, s.hist.sum);
        out.push_back('\n');
        AppendPromName(&out, s.metric);
        out.append("_count");
        AppendPromLabels(&out, s);
        out.push_back(' ');
        AppendUint(&out, s.hist.count);
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::AppendJsonLine(std::string* out, uint64_t tick,
                                     uint64_t t_ns) const {
  const std::vector<MetricSample> samples = Snapshot();
  out->append("{\"schema\":\"metricprox-metrics\",\"schema_version\":1");
  out->append(",\"tick\":");
  AppendUint(out, tick);
  out->append(",\"t_ns\":");
  AppendUint(out, t_ns);
  out->append(",\"samples\":[");
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"tenant\":");
    obsjson::AppendString(out, s.tenant);
    out->append(",\"session\":");
    AppendUint(out, s.session);
    out->append(",\"metric\":");
    obsjson::AppendString(out, s.metric);
    out->append(",\"kind\":");
    obsjson::AppendString(out, MetricKindName(s.kind));
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out->append(",\"value\":");
        AppendUint(out, s.counter);
        break;
      case MetricSample::Kind::kGauge:
        out->append(",\"value\":");
        obsjson::AppendDouble(out, s.gauge);
        break;
      case MetricSample::Kind::kHistogram:
        out->append(",\"count\":");
        AppendUint(out, s.hist.count);
        out->append(",\"sum\":");
        obsjson::AppendDouble(out, s.hist.sum);
        out->append(",\"p50\":");
        obsjson::AppendDouble(out, s.hist.p50);
        out->append(",\"p90\":");
        obsjson::AppendDouble(out, s.hist.p90);
        out->append(",\"p99\":");
        obsjson::AppendDouble(out, s.hist.p99);
        break;
    }
    out->push_back('}');
  }
  out->append("]}\n");
}

}  // namespace metricprox
