#ifndef METRICPROX_OBS_TRACE_H_
#define METRICPROX_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace metricprox {

/// What happened. One enumerator per observable action on the distance
/// path; the JSONL schema in tools/schema/trace_schema.json lists the same
/// names and CI validates emitted traces against it.
enum class TraceEventKind : uint8_t {
  kComparison,       // a comparison verb was asked (LessThan/PairLess/proofs)
  kDecidedByCache,   // answered from already-resolved edges
  kDecidedByBounds,  // answered by the bound scheme, no oracle touched
  kDecidedByOracle,  // fell through to a resolution
  kUndecided,        // one-sided proof verb returned "not proven"
  kBoundInterval,    // bound interval [lb, ub] at the moment of fallthrough
  kOracleCall,       // one resolved distance, with observed latency
  kBatchShipped,     // a batch round-trip left for the oracle
  kRetry,            // retry middleware re-shipped pair(s)
  kBackoff,          // retry middleware slept between attempts
  kStoreHit,         // persistent store answered, inner oracle untouched
  kWalAppend,        // fresh distance appended to the write-ahead log
  kCompaction,       // store snapshot rewritten, WAL truncated
  kDecidedBySlack,   // settled approximately under a ResolutionPolicy
  kDecidedByWeak,    // settled from the weak oracle's certified interval
  kSpanBegin,        // a causal span opened (resolve/bound/coalesce/ship/rtt)
  kSpanEnd,          // the matching span closed; carries duration
  kCoalesceDedup,    // a submission joined another session's pending pair
};

/// Stable wire name ("decided_by_bounds", "oracle_call", ...).
std::string_view TraceEventKindName(TraceEventKind kind);

/// One telemetry event. Fields that do not apply to a kind stay at their
/// defaults and are omitted from the JSONL encoding (NaN doubles,
/// kInvalidObject ids, zero count).
struct TraceEvent {
  static constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();

  TraceEventKind kind = TraceEventKind::kComparison;
  uint64_t seq = 0;   // per-run sequence number, assigned by Telemetry::Emit
  uint64_t t_ns = 0;  // monotonic nanoseconds since telemetry start
  ObjectId i = kInvalidObject;
  ObjectId j = kInvalidObject;
  double lb = kUnset;         // lower bound (kBoundInterval)
  double ub = kUnset;         // upper bound (kBoundInterval)
  double threshold = kUnset;  // comparison threshold, when there is one
  double value = kUnset;      // resolved distance (kOracleCall, kStoreHit)
  double seconds = kUnset;    // latency / backoff duration / span duration
  uint64_t count = 0;         // batch size / retried pairs / compacted edges

  // Causal-span fields (kSpanBegin/kSpanEnd; session_id and tenant are also
  // stamped onto every event emitted through a session-tagged Telemetry).
  // Span ids are pool-unique and nonzero; 0 means "not a span event" /
  // "root span" / "no cross-trace link" / "untagged run" respectively.
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// Causal link across session traces: a waiter's oracle-RTT span points
  /// at the batch-ship span (possibly another session's flusher-side span)
  /// that actually carried its pairs over the wire.
  uint64_t link_span_id = 0;
  uint64_t session_id = 0;
  std::string name;    // span name ("resolve", "bound", "coalesce_submit",
                       // "batch_ship", "oracle_rtt")
  std::string tenant;  // tenant namespace of the emitting session
};

/// One JSON object, no trailing newline. Non-finite doubles are emitted as
/// null so the output stays strict JSON.
std::string TraceEventToJson(const TraceEvent& event);

/// Where events go. Implementations must tolerate concurrent Emit calls:
/// the batch transport resolves pairs on worker threads.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceEvent& event) = 0;
};

/// Discards everything. Useful for overhead measurements where the
/// histograms should fill but no trace should be kept.
class NullTraceSink final : public TraceSink {
 public:
  void Emit(const TraceEvent&) override {}
};

/// Keeps the most recent `capacity` events in memory; older events are
/// overwritten and counted as dropped. Snapshot() returns oldest-first.
class RingBufferTraceSink final : public TraceSink {
 public:
  explicit RingBufferTraceSink(size_t capacity);

  void Emit(const TraceEvent& event) override;

  std::vector<TraceEvent> Snapshot() const;
  uint64_t emitted() const;
  /// Events overwritten before anyone looked at them.
  uint64_t dropped() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;        // slot the next event lands in
  uint64_t emitted_ = 0;
};

/// Streams events to a file as JSON Lines: one header object, one object
/// per event, one footer object written by Close(). Events past `limit`
/// are counted as dropped instead of written, bounding trace size on long
/// runs; limit 0 means unlimited.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Opens `path` for writing and emits the header line. Check status()
  /// before use; Emit on a failed sink is a no-op.
  JsonlTraceSink(const std::string& path, const std::string& trace_id,
                 uint64_t limit);
  ~JsonlTraceSink() override;

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  void Emit(const TraceEvent& event) override;

  /// Writes the footer (events written/dropped) and closes the file.
  /// Idempotent; returns the first error encountered over the sink's life.
  Status Close();

  const Status& status() const { return status_; }
  uint64_t written() const;
  uint64_t dropped() const;

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  Status status_;
  uint64_t limit_;
  uint64_t written_ = 0;
  uint64_t dropped_ = 0;
};

namespace obsjson {
/// Appends `s` as a double-quoted JSON string with escaping.
void AppendString(std::string* out, std::string_view s);
/// Appends a JSON number; non-finite values become null (strict JSON has
/// no NaN/Infinity literals).
void AppendDouble(std::string* out, double value);
}  // namespace obsjson

}  // namespace metricprox

#endif  // METRICPROX_OBS_TRACE_H_
