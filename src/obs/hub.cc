#include "obs/hub.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "core/logging.h"

namespace metricprox {

namespace {

/// The fatal log hook is a bare function pointer, so the installed hub is
/// reached through one process-wide slot.
std::atomic<ObservabilityHub*> g_fatal_hub{nullptr};

void FatalHubDump() {
  if (ObservabilityHub* hub = g_fatal_hub.load(std::memory_order_acquire);
      hub != nullptr) {
    (void)hub->DumpFlight("check_failure");
  }
}

/// Keeps dump filenames shell-safe whatever the caller passes as reason.
std::string SanitizeReason(std::string_view reason) {
  std::string out;
  out.reserve(reason.size());
  for (const char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("dump") : out;
}

}  // namespace

ObservabilityHub::ObservabilityHub(ObservabilityHubOptions options)
    : options_(std::move(options)),
      flight_(options_.sink,
              options_.flight_capacity == 0 ? 1 : options_.flight_capacity) {
  if (!options_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    // A bad directory degrades to no file output; dumps report the error.
  }
  pool_telemetry_.sink = &flight_;
  pool_telemetry_.shared_clock = &clock_;
  pool_telemetry_.trace_id = options_.trace_id;
  pool_telemetry_.tenant = options_.tenant;
  background_ = std::thread([this] { BackgroundLoop(); });
}

ObservabilityHub::~ObservabilityHub() {
  ObservabilityHub* self = this;
  if (g_fatal_hub.compare_exchange_strong(self, nullptr)) {
    SetFatalLogHook(nullptr);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (background_.joinable()) background_.join();
  if (!options_.dir.empty()) {
    // One final time-series point so even a shorter-than-interval run
    // leaves a snapshot behind.
    SampleNow();
  }
  if (options_.dump_on_exit) (void)DumpFlight("exit");
}

Telemetry* ObservabilityHub::SessionTelemetry(uint64_t session_id,
                                              std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Telemetry>& slot = session_telemetry_[session_id];
  if (slot == nullptr) {
    slot = std::make_unique<Telemetry>();
    slot->sink = &flight_;
    slot->shared_clock = &clock_;
    slot->trace_id = options_.trace_id;
    slot->session_id = session_id;
    slot->tenant = std::string(tenant);
  }
  return slot.get();
}

Status ObservabilityHub::DumpFlight(std::string_view reason) {
  if (options_.dir.empty()) return Status();
  const uint64_t n = dump_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "-%" PRIu64 ".jsonl", n);
  const std::string path =
      options_.dir + "/flight-" + SanitizeReason(reason) + suffix;
  return flight_.Dump(path, reason);
}

void ObservabilityHub::SetStallProbe(
    double linger_seconds, std::function<double()> oldest_wait_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_linger_seconds_ = linger_seconds;
  stall_probe_ = std::move(oldest_wait_seconds);
  in_stall_ = false;
}

void ObservabilityHub::ClearStallProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  stall_linger_seconds_ = 0.0;
  stall_probe_ = nullptr;
  in_stall_ = false;
}

void ObservabilityHub::AddGaugeProbe(const void* owner, std::string tenant,
                                     uint64_t session, std::string metric,
                                     std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  gauge_probes_.push_back(GaugeProbe{owner, std::move(tenant), session,
                                     std::move(metric), std::move(probe)});
}

void ObservabilityHub::RemoveGaugeProbes(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(gauge_probes_,
                [owner](const GaugeProbe& g) { return g.owner == owner; });
}

void ObservabilityHub::SampleNow() {
  std::vector<GaugeProbe> probes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    probes = gauge_probes_;
  }
  for (const GaugeProbe& g : probes) {
    metrics_.GaugeSet(g.tenant, g.session, g.metric, g.probe());
  }
  // Built-in hub gauges, so an exposition exists even before any pool or
  // workload registers its own probes.
  metrics_.GaugeSet(options_.tenant, 0, "spans_emitted",
                    static_cast<double>(flight_.spans_seen()));
  metrics_.GaugeSet(options_.tenant, 0, "flight_dumps",
                    static_cast<double>(flight_.dumps()));
  metrics_.GaugeSet(options_.tenant, 0, "watchdog_stalls",
                    static_cast<double>(watchdog_stalls()));
  const uint64_t tick =
      metrics_samples_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto t_ns =
      static_cast<uint64_t>(clock_.clock.ElapsedSeconds() * 1e9);
  std::string line;
  metrics_.AppendJsonLine(&line, tick, t_ns);
  WriteMetricsArtifacts(line);
}

void ObservabilityHub::WriteMetricsArtifacts(const std::string& json_line) {
  if (options_.dir.empty()) return;
  if (std::FILE* series =
          std::fopen((options_.dir + "/metrics.jsonl").c_str(), "ab");
      series != nullptr) {
    std::fwrite(json_line.data(), 1, json_line.size(), series);
    std::fclose(series);
  }
  const std::string prom = metrics_.RenderPrometheus();
  if (std::FILE* expo =
          std::fopen((options_.dir + "/metrics.prom").c_str(), "wb");
      expo != nullptr) {
    std::fwrite(prom.data(), 1, prom.size(), expo);
    std::fclose(expo);
  }
}

void ObservabilityHub::InstallFatalHook() {
  g_fatal_hub.store(this, std::memory_order_release);
  SetFatalLogHook(&FatalHubDump);
}

void ObservabilityHub::AccumulateStats(ResolverStats* total) const {
  total->spans_emitted += flight_.spans_seen();
  total->metrics_samples += metrics_samples();
  total->flight_dumps += flight_.dumps();
  total->watchdog_stalls += watchdog_stalls();
}

void ObservabilityHub::BackgroundLoop() {
  const auto period = std::chrono::duration<double>(
      options_.poll_interval_seconds > 0 ? options_.poll_interval_seconds
                                         : 0.02);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, period, [this] { return stopping_; });
      if (stopping_) return;
    }
    PollOnce();
  }
}

void ObservabilityHub::PollOnce() {
  // Watchdog: one stall episode = one dump + one counter tick; the episode
  // re-arms once the oldest wait falls back under half the threshold.
  std::function<double()> probe;
  double linger = 0.0;
  bool in_stall = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    probe = stall_probe_;
    linger = stall_linger_seconds_;
    in_stall = in_stall_;
  }
  if (probe != nullptr && options_.stall_factor > 0 && linger > 0) {
    const double age = probe();
    const double limit = linger * options_.stall_factor;
    if (age > limit && !in_stall) {
      watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
      (void)DumpFlight("stall");
      std::lock_guard<std::mutex> lock(mu_);
      in_stall_ = true;
    } else if (age <= 0.5 * limit && in_stall) {
      std::lock_guard<std::mutex> lock(mu_);
      in_stall_ = false;
    }
  }

  // `mpx obs dump` live snapshot request: a sentinel file in the obs dir.
  if (!options_.dir.empty()) {
    std::error_code ec;
    const std::string sentinel = options_.dir + "/DUMP_REQUEST";
    if (std::filesystem::exists(sentinel, ec)) {
      (void)DumpFlight("request");
      std::filesystem::remove(sentinel, ec);
    }
  }

  // Timed metrics tick.
  if (options_.metrics_interval_seconds > 0) {
    bool due = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const double now = clock_.clock.ElapsedSeconds();
      if (now - last_sample_elapsed_ >= options_.metrics_interval_seconds) {
        last_sample_elapsed_ = now;
        due = true;
      }
    }
    if (due) SampleNow();
  }
}

}  // namespace metricprox
