#include "data/io.h"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace metricprox {

namespace {

Status ParseRow(const std::string& line, size_t line_number,
                std::vector<double>* out) {
  out->clear();
  size_t start = 0;
  while (start <= line.size()) {
    size_t comma = line.find(',', start);
    if (comma == std::string::npos) comma = line.size();
    const std::string field = line.substr(start, comma - start);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || errno == ERANGE) {
      std::ostringstream os;
      os << "line " << line_number << ": cannot parse field '" << field
         << "'";
      return Status::InvalidArgument(os.str());
    }
    out->push_back(value);
    start = comma + 1;
    if (comma == line.size()) break;
  }
  return Status::OK();
}

}  // namespace

StatusOr<PointSet> LoadPointsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  PointSet points;
  std::string line;
  size_t line_number = 0;
  std::vector<double> row;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    MP_RETURN_IF_ERROR(ParseRow(line, line_number, &row));
    if (!points.empty() && row.size() != points[0].size()) {
      std::ostringstream os;
      os << "line " << line_number << ": arity " << row.size()
         << " does not match first row arity " << points[0].size();
      return Status::InvalidArgument(os.str());
    }
    points.push_back(row);
  }
  if (points.empty()) {
    return Status::InvalidArgument(path + " contains no points");
  }
  return points;
}

Status SavePointsCsv(const std::string& path, const PointSet& points) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const std::vector<double>& p : points) {
    for (size_t d = 0; d < p.size(); ++d) {
      if (d > 0) out << ',';
      out << p[d];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

StatusOr<std::vector<std::string>> LoadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

}  // namespace metricprox
