#include "data/synthetic.h"

#include <algorithm>
#include <random>

#include "core/logging.h"

namespace metricprox {

PointSet UniformPoints(ObjectId n, uint32_t dim, double range,
                       uint64_t seed) {
  CHECK_GE(n, 1u);
  CHECK_GE(dim, 1u);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, range);
  PointSet points(n, std::vector<double>(dim));
  for (std::vector<double>& p : points) {
    for (double& c : p) c = coord(rng);
  }
  return points;
}

PointSet GaussianMixturePoints(ObjectId n, uint32_t dim,
                               uint32_t num_clusters, double range,
                               double spread, uint64_t seed) {
  CHECK_GE(n, 1u);
  CHECK_GE(dim, 1u);
  CHECK_GE(num_clusters, 1u);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, range);
  std::normal_distribution<double> noise(0.0, spread);

  PointSet centers(num_clusters, std::vector<double>(dim));
  for (std::vector<double>& c : centers) {
    for (double& x : c) x = coord(rng);
  }
  PointSet points(n, std::vector<double>(dim));
  for (ObjectId i = 0; i < n; ++i) {
    const std::vector<double>& center = centers[rng() % num_clusters];
    for (uint32_t d = 0; d < dim; ++d) {
      points[i][d] = center[d] + noise(rng);
    }
  }
  return points;
}

std::vector<std::string> DnaFamilyStrings(ObjectId n, size_t length,
                                          uint32_t num_families,
                                          uint32_t mutations, uint64_t seed) {
  CHECK_GE(n, 1u);
  CHECK_GE(length, 8u);
  CHECK_GE(num_families, 1u);
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::mt19937_64 rng(seed);
  auto random_base = [&rng]() { return kBases[rng() % 4]; };

  std::vector<std::string> ancestors(num_families);
  for (std::string& a : ancestors) {
    a.resize(length);
    for (char& c : a) c = random_base();
  }

  std::vector<std::string> out;
  out.reserve(n);
  while (out.size() < n) {
    std::string s = ancestors[rng() % num_families];
    for (uint32_t m = 0; m < mutations; ++m) {
      const size_t pos = rng() % s.size();
      switch (rng() % 3) {
        case 0:  // substitution
          s[pos] = random_base();
          break;
        case 1:  // insertion
          s.insert(s.begin() + pos, random_base());
          break;
        default:  // deletion (keep a minimum length)
          if (s.size() > 4) s.erase(s.begin() + pos);
          break;
      }
    }
    // Metric identity needs pairwise-distinct objects.
    if (std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<double> RandomShortestPathMetric(ObjectId n, double roughness,
                                             uint64_t seed) {
  CHECK_GE(n, 2u);
  CHECK_GT(roughness, 0.0);
  CHECK_LE(roughness, 1.0);
  std::mt19937_64 rng(seed);
  // Raw weights in [1 - roughness, 1 + roughness] scaled to [0, 1]-ish;
  // closure only shortens, so positivity is preserved.
  std::uniform_real_distribution<double> weight(1.0 - roughness,
                                                1.0 + roughness);
  std::vector<double> d(static_cast<size_t>(n) * n, 0.0);
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      const double w = weight(rng);
      d[i * n + j] = w;
      d[j * n + i] = w;
    }
  }
  // Floyd–Warshall closure.
  for (ObjectId k = 0; k < n; ++k) {
    for (ObjectId i = 0; i < n; ++i) {
      const double dik = d[i * n + k];
      for (ObjectId j = 0; j < n; ++j) {
        const double via = dik + d[k * n + j];
        if (via < d[i * n + j]) d[i * n + j] = via;
      }
    }
  }
  // Normalize into (0, 1].
  double diameter = 0.0;
  for (double v : d) diameter = std::max(diameter, v);
  CHECK_GT(diameter, 0.0);
  for (double& v : d) v /= diameter;
  return d;
}

}  // namespace metricprox
