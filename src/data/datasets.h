#ifndef METRICPROX_DATA_DATASETS_H_
#define METRICPROX_DATA_DATASETS_H_

#include <memory>
#include <string>

#include "core/oracle.h"
#include "core/types.h"
#include "oracle/road_network.h"

namespace metricprox {

/// A self-owning workload: the oracle plus whatever backing storage it
/// needs (road network, point matrix, ...), and the normalization bound the
/// DFT scheme requires.
struct Dataset {
  std::string name;
  std::unique_ptr<DistanceOracle> oracle;
  /// Conservative upper bound on any pairwise distance.
  double max_distance = 1.0;
  /// Keep-alive for road-backed oracles.
  std::shared_ptr<RoadNetwork> network;
};

/// SF-POI-like (paper Table 1 row 1): points-of-interest clustered inside
/// one city, distances = shortest paths over a synthetic road network
/// (stand-in for the Google Maps API; see DESIGN.md §4).
Dataset MakeSfPoiLike(ObjectId n, uint64_t seed);

/// UrbanGB-like (Table 1 row 3): POIs spread over several towns on a larger
/// road network — longer inter-cluster hauls than SF-POI.
Dataset MakeUrbanGbLike(ObjectId n, uint64_t seed);

/// Flickr1M-like (Table 1 row 2): `dim`-dimensional Gaussian-mixture
/// feature vectors under Euclidean distance.
Dataset MakeFlickrLike(ObjectId n, uint32_t dim, uint64_t seed);

/// DNA-like strings under Levenshtein distance (the paper's bioinformatics
/// application class).
Dataset MakeDnaLike(ObjectId n, size_t length, uint64_t seed);

/// Dense random shortest-path-closure metric, normalized into (0, 1] — the
/// workhorse of tests and of the tiny-graph DFT experiments.
Dataset MakeRandomMetric(ObjectId n, uint64_t seed);

/// Tightly clustered low-dimensional Euclidean points (cluster spread is a
/// fraction of the unit range). Cluster structure is what makes triangle
/// bounds decisive, so this generator is used where schemes must visibly
/// differentiate on small instances (e.g. the DFT experiments).
Dataset MakeClusteredEuclidean(ObjectId n, uint32_t dim,
                               uint32_t num_clusters, double spread,
                               uint64_t seed);

}  // namespace metricprox

#endif  // METRICPROX_DATA_DATASETS_H_
