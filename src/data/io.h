#ifndef METRICPROX_DATA_IO_H_
#define METRICPROX_DATA_IO_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "oracle/vector_oracle.h"

namespace metricprox {

/// Loads a headerless CSV of equal-arity numeric rows (one point per line,
/// comma-separated coordinates). Blank lines are skipped; any parse error
/// or ragged row fails the whole load.
StatusOr<PointSet> LoadPointsCsv(const std::string& path);

/// Writes points as CSV with full double precision. Overwrites `path`.
Status SavePointsCsv(const std::string& path, const PointSet& points);

/// Loads one string per line (used for edit-distance datasets). Blank lines
/// are skipped.
StatusOr<std::vector<std::string>> LoadLines(const std::string& path);

}  // namespace metricprox

#endif  // METRICPROX_DATA_IO_H_
