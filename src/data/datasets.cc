#include "data/datasets.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_set>
#include <vector>

#include "core/logging.h"
#include "data/synthetic.h"
#include "oracle/matrix_oracle.h"
#include "oracle/string_oracle.h"
#include "oracle/vector_oracle.h"

namespace metricprox {

namespace {

// Snaps `n` cluster-distributed planar points to distinct road junctions.
// A `background_fraction` of the points is scattered uniformly (stray POIs
// between towns), which real POI datasets exhibit and which static
// landmark tables cover poorly.
std::vector<uint32_t> SnapClusteredObjects(const RoadNetwork& network,
                                           ObjectId n, uint32_t num_clusters,
                                           double cluster_spread,
                                           double background_fraction,
                                           uint64_t seed) {
  CHECK_LE(n, network.num_nodes())
      << "more objects than junctions to pin them to";
  std::mt19937_64 rng(seed);
  const auto& coords = network.coordinates();
  double max_x = 0.0;
  double max_y = 0.0;
  for (const auto& [x, y] : coords) {
    max_x = std::max(max_x, x);
    max_y = std::max(max_y, y);
  }
  std::uniform_real_distribution<double> ux(0.0, max_x);
  std::uniform_real_distribution<double> uy(0.0, max_y);
  std::vector<std::pair<double, double>> centers(num_clusters);
  for (auto& c : centers) c = {ux(rng), uy(rng)};

  std::normal_distribution<double> spread(0.0, cluster_spread);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::unordered_set<uint32_t> used;
  std::vector<uint32_t> nodes;
  nodes.reserve(n);
  while (nodes.size() < n) {
    uint32_t node;
    if (unit(rng) < background_fraction) {
      node = network.NearestNode(ux(rng), uy(rng));
    } else {
      const auto& center = centers[rng() % num_clusters];
      node = network.NearestNode(center.first + spread(rng),
                                 center.second + spread(rng));
    }
    if (used.insert(node).second) {
      nodes.push_back(node);
    } else if (used.size() > network.num_nodes() / 2) {
      // Dense occupancy: fall back to scanning for any free junction so we
      // terminate even when clusters are saturated.
      for (uint32_t v = 0; v < network.num_nodes() && nodes.size() < n; ++v) {
        if (used.insert(v).second) nodes.push_back(v);
      }
    }
  }
  return nodes;
}

Dataset MakeRoadDataset(std::string name, ObjectId n,
                        const RoadNetworkConfig& config,
                        uint32_t num_clusters, double cluster_spread,
                        double background_fraction, uint64_t seed) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.network = std::make_shared<RoadNetwork>(RoadNetwork::Generate(config));
  std::vector<uint32_t> nodes = SnapClusteredObjects(
      *dataset.network, n, num_clusters, cluster_spread, background_fraction,
      seed + 1);
  dataset.oracle = std::make_unique<RoadNetworkOracle>(dataset.network.get(),
                                                       std::move(nodes));
  // Conservative diameter: the grid diagonal stretched by the worst detour
  // is an upper bound on any shortest path between junctions.
  const double diag = std::hypot(static_cast<double>(config.grid_width),
                                 static_cast<double>(config.grid_height));
  dataset.max_distance = diag * config.detour_max * 4.0;
  return dataset;
}

}  // namespace

Dataset MakeSfPoiLike(ObjectId n, uint64_t seed) {
  RoadNetworkConfig config;
  config.grid_width = 48;
  config.grid_height = 48;
  config.edge_keep_probability = 0.82;
  config.detour_min = 1.1;
  config.detour_max = 2.2;
  config.highway_fraction = 0.08;
  config.seed = seed;
  // One dense city: neighborhood count grows with the POI count (a fixed
  // handful of landmarks covers an ever-shrinking fraction of town, as in
  // the real dataset), plus stray POIs between neighborhoods.
  const uint32_t clusters = std::max<uint32_t>(12, n / 24);
  return MakeRoadDataset("sf-poi-like", n, config, clusters,
                         /*cluster_spread=*/3.0,
                         /*background_fraction=*/0.15, seed);
}

Dataset MakeUrbanGbLike(ObjectId n, uint64_t seed) {
  RoadNetworkConfig config;
  config.grid_width = 72;
  config.grid_height = 72;
  config.edge_keep_probability = 0.78;
  config.detour_min = 1.2;
  config.detour_max = 3.0;
  config.highway_fraction = 0.06;
  config.seed = seed;
  // Great-Britain-style: many separated towns whose count grows with n,
  // on a bigger map with long inter-town hauls.
  const uint32_t clusters = std::max<uint32_t>(8, n / 32);
  return MakeRoadDataset("urbangb-like", n, config, clusters,
                         /*cluster_spread=*/2.0,
                         /*background_fraction=*/0.10, seed);
}

Dataset MakeFlickrLike(ObjectId n, uint32_t dim, uint64_t seed) {
  Dataset dataset;
  dataset.name = "flickr-like";
  // Real image descriptors are high-dimensional but have low *intrinsic*
  // dimension; isotropic 256-d Gaussians would concentrate all pairwise
  // distances and make every bound scheme useless (which real Flickr
  // features are not). Generate a clustered low-dimensional latent space
  // and embed it with a fixed random linear map plus small ambient noise.
  constexpr uint32_t kLatentDim = 8;
  const uint32_t latent_dim = std::min(kLatentDim, dim);
  PointSet latent = GaussianMixturePoints(n, latent_dim, /*num_clusters=*/32,
                                          /*range=*/4.0, /*spread=*/0.25,
                                          seed);
  std::mt19937_64 rng(seed ^ 0x5eedf11c);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> embedding(static_cast<size_t>(dim) * latent_dim);
  for (double& v : embedding) v = gauss(rng) / std::sqrt(latent_dim);
  std::normal_distribution<double> ambient(0.0, 0.02);

  PointSet points(n, std::vector<double>(dim));
  for (ObjectId i = 0; i < n; ++i) {
    for (uint32_t d = 0; d < dim; ++d) {
      double acc = ambient(rng);
      for (uint32_t l = 0; l < latent_dim; ++l) {
        acc += embedding[d * latent_dim + l] * latent[i][l];
      }
      points[i][d] = acc;
    }
  }
  // Latent diameter ~ range * sqrt(latent_dim); the random map roughly
  // preserves norms (rows ~ unit length in expectation); pad generously.
  dataset.max_distance =
      4.0 * std::sqrt(static_cast<double>(latent_dim)) * 6.0 +
      std::sqrt(static_cast<double>(dim)) * 0.5;
  dataset.oracle =
      std::make_unique<VectorOracle>(std::move(points), VectorMetric::kEuclidean);
  return dataset;
}

Dataset MakeDnaLike(ObjectId n, size_t length, uint64_t seed) {
  Dataset dataset;
  dataset.name = "dna-like";
  std::vector<std::string> strings = DnaFamilyStrings(
      n, length, /*num_families=*/std::max<uint32_t>(2, n / 24),
      /*mutations=*/static_cast<uint32_t>(length / 8), seed);
  // Edit distance never exceeds the longer string; mutations add at most
  // length/8 insertions each.
  dataset.max_distance = static_cast<double>(length + length / 4);
  dataset.oracle = std::make_unique<LevenshteinOracle>(std::move(strings));
  return dataset;
}

Dataset MakeRandomMetric(ObjectId n, uint64_t seed) {
  Dataset dataset;
  dataset.name = "random-metric";
  dataset.max_distance = 1.0;
  dataset.oracle = std::make_unique<MatrixOracle>(
      RandomShortestPathMetric(n, /*roughness=*/0.9, seed), n);
  return dataset;
}

Dataset MakeClusteredEuclidean(ObjectId n, uint32_t dim,
                               uint32_t num_clusters, double spread,
                               uint64_t seed) {
  Dataset dataset;
  dataset.name = "clustered-euclidean";
  PointSet points =
      GaussianMixturePoints(n, dim, num_clusters, /*range=*/1.0, spread, seed);
  // Gaussian tails extend past the unit box; bound the diameter generously.
  dataset.max_distance =
      std::sqrt(static_cast<double>(dim)) * (1.0 + 12.0 * spread);
  dataset.oracle =
      std::make_unique<VectorOracle>(std::move(points), VectorMetric::kEuclidean);
  return dataset;
}

}  // namespace metricprox
