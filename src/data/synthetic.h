#ifndef METRICPROX_DATA_SYNTHETIC_H_
#define METRICPROX_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "oracle/vector_oracle.h"

namespace metricprox {

/// n points uniform in [0, range]^dim.
PointSet UniformPoints(ObjectId n, uint32_t dim, double range, uint64_t seed);

/// n points from a Gaussian mixture: `num_clusters` centers uniform in
/// [0, range]^dim, points N(center, spread^2 I). Models feature-vector
/// corpora like Flickr1M.
PointSet GaussianMixturePoints(ObjectId n, uint32_t dim,
                               uint32_t num_clusters, double range,
                               double spread, uint64_t seed);

/// n random strings over the DNA alphabet: `num_families` random ancestors
/// of the given length, each instance derived by `mutations` random
/// point-edits (substitute/insert/delete). Pairs within a family are close
/// in edit distance, across families far — the cluster structure k-NN and
/// clustering workloads need.
std::vector<std::string> DnaFamilyStrings(ObjectId n, size_t length,
                                          uint32_t num_families,
                                          uint32_t mutations, uint64_t seed);

/// Dense n*n shortest-path-closure metric: start from a random positively
/// weighted complete graph and take the all-pairs shortest-path closure
/// (which is always a metric). `roughness` in (0, 1] controls how far the
/// raw weights deviate before closure — higher means more triangle slack
/// gets removed, producing a metric with more "shortcut" structure.
std::vector<double> RandomShortestPathMetric(ObjectId n, double roughness,
                                             uint64_t seed);

}  // namespace metricprox

#endif  // METRICPROX_DATA_SYNTHETIC_H_
