#ifndef METRICPROX_GRAPH_CONCURRENT_GRAPH_H_
#define METRICPROX_GRAPH_CONCURRENT_GRAPH_H_

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// A striped, thread-safe distance graph: the shared data plane of the
/// session layer (src/service/). Many concurrent sessions publish resolved
/// edges here and read each other's resolutions, while every session keeps
/// its own single-threaded PartialDistanceGraph for deterministic bound
/// scans — PartialDistanceGraph stays the exact single-threaded
/// specialization, byte-identical to before, and this class adds the
/// concurrent superset.
///
/// Layout and locking:
///  * the edge map is striped into N shards keyed by EdgeKeyHash, each a
///    mutex plus an EdgeKey -> distance hash map: Insert/Get/Has touch one
///    shard lock for O(1) under contention spread across shards;
///  * per-node adjacency is published as an immutable snapshot — a
///    shared_ptr<const NodeColumns> holding the node's sorted SoA columns
///    (ids[], distances[]) — replaced wholesale (copy-on-write) under the
///    node's shard lock. Readers briefly take the shard lock to copy the
///    shared_ptr and then scan entirely lock-free; an old epoch stays alive
///    for as long as any reader holds it, so bound scans never block a
///    writer and never observe a torn column pair.
///
/// Snapshot semantics (pinned by concurrent_graph_test):
///  * a snapshot's ids are strictly ascending and ids.size() ==
///    distances.size() — always, under any writer interleaving;
///  * InsertEdges publishes each touched node's additions in ONE swap, so a
///    snapshot observes all of a batch's edges for that node or none of
///    them (per-node batch atomicity; cross-node atomicity is deliberately
///    not promised — any subset of true metric edges yields valid bounds);
///  * an edge is visible in Get()/Has() no later than in the adjacency
///    snapshots: the edge-map emplace happens first, so the map is the
///    authority for duplicate detection, and a snapshot may briefly lag an
///    in-flight insert.
///
/// Duplicate semantics mirror PartialDistanceGraph::InsertEdges exactly:
/// an exact duplicate (same pair, same distance) — whether racing another
/// thread or replaying a warm start — is skipped silently; a *conflicting*
/// distance for a known pair CHECK-fails, as two values for one pair mean
/// the edges come from different metric spaces.
class ConcurrentDistanceGraph {
 public:
  /// One node's published adjacency epoch: immutable after publication.
  struct NodeColumns {
    std::vector<ObjectId> ids;
    std::vector<double> distances;

    /// Span view in the same shape the bound kernels consume.
    PartialDistanceGraph::AdjacencyColumns view() const {
      return PartialDistanceGraph::AdjacencyColumns{ids, distances};
    }
  };
  using Snapshot = std::shared_ptr<const NodeColumns>;

  explicit ConcurrentDistanceGraph(ObjectId num_objects,
                                   size_t num_shards = kDefaultShards);

  ConcurrentDistanceGraph(const ConcurrentDistanceGraph&) = delete;
  ConcurrentDistanceGraph& operator=(const ConcurrentDistanceGraph&) = delete;

  ObjectId num_objects() const { return num_objects_; }
  size_t num_shards() const { return num_shards_; }

  /// Shard owning node i's adjacency lock (exposed so tests can construct
  /// provably disjoint / deliberately colliding workloads).
  size_t NodeShardOf(ObjectId i) const { return i % num_shards_; }

  /// Thread-safe point lookups against the striped edge map.
  bool Has(ObjectId i, ObjectId j) const;
  std::optional<double> Get(ObjectId i, ObjectId j) const;

  /// Records dist(i, j) = d. Returns true if the edge was fresh, false if
  /// an exact duplicate already existed (possibly inserted by a racing
  /// thread between the caller's Get and this Insert — the common benign
  /// race of two sessions resolving the same pair). CHECK-fails on
  /// self-edges, out-of-range ids, negative distances and conflicting
  /// duplicates, identical to the single-threaded graph.
  bool Insert(ObjectId i, ObjectId j, double d);

  /// Bulk insert with the same duplicate semantics; publishes each touched
  /// node's adjacency once (see the per-node batch atomicity note above).
  /// Returns the number of fresh (non-duplicate) edges recorded.
  size_t InsertEdges(std::span<const WeightedEdge> batch);

  /// The node's current adjacency epoch; never null (an untouched node
  /// yields a shared empty-columns instance). The returned snapshot is
  /// immutable and stays valid for as long as the caller holds it,
  /// regardless of concurrent writers.
  Snapshot AdjacencySnapshot(ObjectId i) const;

  /// Resolved-neighbor count of i (the size of its current snapshot).
  size_t Degree(ObjectId i) const { return AdjacencySnapshot(i)->ids.size(); }

  /// Total resolved edges (sums the shard maps under their locks; a racing
  /// writer may land just before or just after the sum).
  size_t num_edges() const;

  /// All resolved edges with u < v, sorted by (u, v): a deterministic
  /// value-snapshot regardless of the insertion interleaving (unlike
  /// PartialDistanceGraph::edges(), insertion order is meaningless under
  /// concurrency, so a canonical order is returned instead).
  std::vector<WeightedEdge> Edges() const;

  static constexpr size_t kDefaultShards = 16;

 private:
  struct EdgeShard {
    mutable std::mutex mu;
    std::unordered_map<EdgeKey, double, EdgeKeyHash> edges;
  };
  struct NodeShard {
    mutable std::mutex mu;
  };

  size_t EdgeShardOf(EdgeKey key) const {
    return EdgeKeyHash{}(key) % num_shards_;
  }

  /// Emplaces into the striped edge map. Returns true when fresh;
  /// CHECK-fails on a conflicting duplicate.
  bool EmplaceEdge(ObjectId i, ObjectId j, double d);

  /// Copy-on-write publication: splices the (id, d) entries (sorted by id,
  /// unique) into node `i`'s columns and swaps in the new epoch, all under
  /// the node's shard lock.
  void PublishNeighbors(ObjectId i,
                        std::span<const PartialDistanceGraph::Neighbor> add);

  void ValidateEdge(ObjectId i, ObjectId j, double d) const;

  ObjectId num_objects_;
  size_t num_shards_;
  std::vector<EdgeShard> edge_shards_;
  std::vector<NodeShard> node_shards_;
  /// columns_[i] is guarded by node_shards_[NodeShardOf(i)].mu; the pointee
  /// is immutable once published.
  std::vector<Snapshot> columns_;
};

}  // namespace metricprox

#endif  // METRICPROX_GRAPH_CONCURRENT_GRAPH_H_
