#ifndef METRICPROX_GRAPH_PARTIAL_GRAPH_H_
#define METRICPROX_GRAPH_PARTIAL_GRAPH_H_

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace metricprox {

/// The evolving partial graph of resolved distances (the paper's data model,
/// Section 3.1): nodes are the n objects; an edge (i, j, d) exists once the
/// oracle has been asked for dist(i, j) = d.
///
/// Representation:
///  * a hash map EdgeKey -> distance for O(1) lookups and duplicate checks;
///  * per-node adjacency lists sorted by neighbor id, so the Tri Scheme can
///    intersect two lists with a linear merge (the role played by the
///    balanced BSTs in the paper; a flat sorted array gives the same
///    O(deg_i + deg_j) intersection with better constants);
///  * a CSR-style SoA mirror of those lists — per-node contiguous
///    (neighbor_ids[], distances[]) column pairs, maintained incrementally
///    on every insert — so the bound kernels (core/simd.h) can stream ids
///    and distances separately instead of striding over Neighbor structs;
///  * an append-only edge list for SPLUB's scan over known edges.
///
/// Insertion cost is O(deg) for the sorted-vector splices plus O(1)
/// amortized hashing; all bench workloads are read-dominated.
class PartialDistanceGraph {
 public:
  struct Neighbor {
    ObjectId id;
    double distance;
  };

  /// One node's adjacency in SoA form: ids[k] and distances[k] describe the
  /// k-th resolved neighbor, sorted ascending by id. Spans point into the
  /// graph's own columns and are invalidated by any insert.
  struct AdjacencyColumns {
    std::span<const ObjectId> ids;
    std::span<const double> distances;
  };

  explicit PartialDistanceGraph(ObjectId num_objects)
      : adjacency_(num_objects),
        csr_ids_(num_objects),
        csr_dist_(num_objects) {}

  ObjectId num_objects() const {
    return static_cast<ObjectId>(adjacency_.size());
  }
  size_t num_edges() const { return edges_.size(); }

  bool Has(ObjectId i, ObjectId j) const {
    return edge_map_.find(EdgeKey(i, j)) != edge_map_.end();
  }

  /// The resolved distance, or nullopt if (i, j) is still unknown.
  std::optional<double> Get(ObjectId i, ObjectId j) const {
    auto it = edge_map_.find(EdgeKey(i, j));
    if (it == edge_map_.end()) return std::nullopt;
    return it->second;
  }

  /// Records dist(i, j) = d. CHECK-fails on duplicates, self-edges and
  /// negative distances (a metric oracle can never produce them).
  void Insert(ObjectId i, ObjectId j, double d);

  /// Bulk form of Insert for the batch resolution path and the store's
  /// warm start: records every edge, but splices each touched adjacency
  /// list once instead of once per edge. Unlike Insert, an exact duplicate
  /// (same pair, same distance) — against the graph or within the batch —
  /// is skipped silently, so a warm-start load followed by a resolver
  /// insert of an already-known edge is a no-op; a duplicate with a
  /// *different* distance still CHECK-fails. For duplicate-free batches the
  /// final state (sorted adjacency, edge-map contents, edges() in span
  /// order) is identical to inserting the edges one by one.
  void InsertEdges(std::span<const WeightedEdge> batch);

  /// Neighbors of i sorted ascending by id.
  const std::vector<Neighbor>& Neighbors(ObjectId i) const {
    DCHECK_LT(i, adjacency_.size());
    return adjacency_[i];
  }

  /// Number of resolved edges incident to i.
  size_t Degree(ObjectId i) const { return Neighbors(i).size(); }

  /// SoA view of Neighbors(i): the same neighbors in the same (ascending-id)
  /// order, as two parallel contiguous columns. This is the layout the
  /// dispatched bound kernels consume; the invariant that it mirrors
  /// Neighbors() exactly across every insert path is pinned by
  /// partial_graph_test.
  AdjacencyColumns AdjacencyView(ObjectId i) const {
    DCHECK_LT(i, csr_ids_.size());
    return AdjacencyColumns{csr_ids_[i], csr_dist_[i]};
  }

  /// All resolved edges in insertion order.
  const std::vector<WeightedEdge>& edges() const { return edges_; }

  /// Calls fn(c, dist(i,c), dist(j,c)) for every common resolved neighbor c
  /// of i and j, i.e. every triangle whose missing edge is (i, j). Linear
  /// merge over the two sorted adjacency lists.
  template <typename Fn>
  void ForEachCommonNeighbor(ObjectId i, ObjectId j, Fn&& fn) const {
    const std::vector<Neighbor>& a = Neighbors(i);
    const std::vector<Neighbor>& b = Neighbors(j);
    size_t x = 0;
    size_t y = 0;
    while (x < a.size() && y < b.size()) {
      if (a[x].id == b[y].id) {
        fn(a[x].id, a[x].distance, b[y].distance);
        ++x;
        ++y;
      } else if (a[x].id < b[y].id) {
        ++x;
      } else {
        ++y;
      }
    }
  }

 private:
  /// Re-derives node i's SoA columns from its (already sorted) AoS list.
  /// O(deg) copy — the same cost as the sort or splice that preceded it.
  void RebuildColumns(ObjectId i);

  std::vector<std::vector<Neighbor>> adjacency_;
  // SoA mirror of adjacency_ (see AdjacencyView). Kept alongside the AoS
  // lists rather than replacing them: Dijkstra-style consumers want the
  // (id, distance) pairs interleaved, the kernels want them separated, and
  // the duplication is bounded by the resolved-edge count.
  std::vector<std::vector<ObjectId>> csr_ids_;
  std::vector<std::vector<double>> csr_dist_;
  std::unordered_map<EdgeKey, double, EdgeKeyHash> edge_map_;
  std::vector<WeightedEdge> edges_;
};

}  // namespace metricprox

#endif  // METRICPROX_GRAPH_PARTIAL_GRAPH_H_
