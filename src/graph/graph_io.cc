#include "graph/graph_io.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace metricprox {

namespace {
constexpr char kMagic[] = "metricprox-graph";
constexpr char kVersion[] = "v1";
}  // namespace

Status SaveGraph(const PartialDistanceGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kMagic << ' ' << kVersion << ' ' << graph.num_objects() << ' '
      << graph.num_edges() << '\n';
  for (const WeightedEdge& e : graph.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

StatusOr<PartialDistanceGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  std::string magic;
  std::string version;
  ObjectId n = 0;
  size_t m = 0;
  if (!(in >> magic >> version >> n >> m) || magic != kMagic) {
    return Status::InvalidArgument(path + ": not a metricprox graph file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported version " + version);
  }
  if (n == 0) return Status::InvalidArgument(path + ": zero objects");

  PartialDistanceGraph graph(n);
  for (size_t e = 0; e < m; ++e) {
    ObjectId u = 0;
    ObjectId v = 0;
    double d = 0.0;
    if (!(in >> u >> v >> d)) {
      std::ostringstream os;
      os << path << ": truncated edge list (expected " << m << " edges, got "
         << e << ")";
      return Status::InvalidArgument(os.str());
    }
    if (u >= n || v >= n || u == v) {
      std::ostringstream os;
      os << path << ": invalid edge (" << u << ", " << v << ")";
      return Status::InvalidArgument(os.str());
    }
    if (!(d >= 0.0) || !std::isfinite(d)) {
      return Status::InvalidArgument(path + ": invalid edge weight");
    }
    if (graph.Has(u, v)) {
      std::ostringstream os;
      os << path << ": duplicate edge (" << u << ", " << v << ")";
      return Status::InvalidArgument(os.str());
    }
    graph.Insert(u, v, d);
  }
  return graph;
}

}  // namespace metricprox
