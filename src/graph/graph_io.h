#ifndef METRICPROX_GRAPH_GRAPH_IO_H_
#define METRICPROX_GRAPH_GRAPH_IO_H_

#include <string>

#include "core/status.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// Persists the resolved edges of a partial graph so an expensive run
/// (e.g. thousands of paid map-API calls) can be checkpointed and resumed:
/// reload the edges, rebuild the resolver on top, and every previously
/// paid distance is a cache hit.
///
/// Format: a text header `metricprox-graph v1 <n> <m>` followed by one
/// `u v distance` line per edge (full double precision, insertion order).
Status SaveGraph(const PartialDistanceGraph& graph, const std::string& path);

/// Loads a graph saved by SaveGraph. Fails with InvalidArgument on any
/// malformed content (bad header, out-of-range ids, duplicate or negative
/// edges) and IoError if the file cannot be read.
StatusOr<PartialDistanceGraph> LoadGraph(const std::string& path);

}  // namespace metricprox

#endif  // METRICPROX_GRAPH_GRAPH_IO_H_
