#include "graph/partial_graph.h"

#include <algorithm>

namespace metricprox {

namespace {

/// Splices (id, d) into the AoS list and the SoA columns at the same rank,
/// keeping all three sorted by id in lockstep.
void InsertSorted(std::vector<PartialDistanceGraph::Neighbor>* list,
                  std::vector<ObjectId>* ids, std::vector<double>* dists,
                  ObjectId id, double d) {
  auto it = std::lower_bound(
      list->begin(), list->end(), id,
      [](const PartialDistanceGraph::Neighbor& n, ObjectId key) {
        return n.id < key;
      });
  const size_t rank = static_cast<size_t>(it - list->begin());
  list->insert(it, PartialDistanceGraph::Neighbor{id, d});
  ids->insert(ids->begin() + rank, id);
  dists->insert(dists->begin() + rank, d);
}

}  // namespace

void PartialDistanceGraph::Insert(ObjectId i, ObjectId j, double d) {
  CHECK_NE(i, j) << "self-edge";
  CHECK_LT(i, num_objects());
  CHECK_LT(j, num_objects());
  CHECK_GE(d, 0.0) << "negative distance from oracle";
  const bool inserted = edge_map_.emplace(EdgeKey(i, j), d).second;
  CHECK(inserted) << "duplicate edge (" << i << ", " << j << ")";
  InsertSorted(&adjacency_[i], &csr_ids_[i], &csr_dist_[i], j, d);
  InsertSorted(&adjacency_[j], &csr_ids_[j], &csr_dist_[j], i, d);
  edges_.push_back(WeightedEdge{i, j, d});
}

void PartialDistanceGraph::InsertEdges(std::span<const WeightedEdge> batch) {
  std::vector<ObjectId> touched;
  touched.reserve(2 * batch.size());
  for (const WeightedEdge& e : batch) {
    CHECK_NE(e.u, e.v) << "self-edge";
    CHECK_LT(e.u, num_objects());
    CHECK_LT(e.v, num_objects());
    CHECK_GE(e.weight, 0.0) << "negative distance from oracle";
    const auto [it, inserted] = edge_map_.emplace(EdgeKey(e.u, e.v), e.weight);
    if (!inserted) {
      // Exact duplicates are no-ops so a warm-start bulk load composes with
      // edges the graph already holds (checkpoint resume, repeated loads).
      // A *conflicting* distance still dies: two values for one pair means
      // the edges come from different metric spaces.
      CHECK_EQ(it->second, e.weight)
          << "conflicting duplicate edge (" << e.u << ", " << e.v << ")";
      continue;
    }
    adjacency_[e.u].push_back(Neighbor{e.v, e.weight});
    adjacency_[e.v].push_back(Neighbor{e.u, e.weight});
    touched.push_back(e.u);
    touched.push_back(e.v);
    edges_.push_back(e);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const ObjectId id : touched) {
    std::sort(adjacency_[id].begin(), adjacency_[id].end(),
              [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
    RebuildColumns(id);
  }
}

void PartialDistanceGraph::RebuildColumns(ObjectId i) {
  const std::vector<Neighbor>& list = adjacency_[i];
  std::vector<ObjectId>& ids = csr_ids_[i];
  std::vector<double>& dists = csr_dist_[i];
  ids.resize(list.size());
  dists.resize(list.size());
  for (size_t k = 0; k < list.size(); ++k) {
    ids[k] = list[k].id;
    dists[k] = list[k].distance;
  }
}

}  // namespace metricprox
