#include "graph/partial_graph.h"

#include <algorithm>

namespace metricprox {

namespace {

void InsertSorted(std::vector<PartialDistanceGraph::Neighbor>* list,
                  ObjectId id, double d) {
  auto it = std::lower_bound(
      list->begin(), list->end(), id,
      [](const PartialDistanceGraph::Neighbor& n, ObjectId key) {
        return n.id < key;
      });
  list->insert(it, PartialDistanceGraph::Neighbor{id, d});
}

}  // namespace

void PartialDistanceGraph::Insert(ObjectId i, ObjectId j, double d) {
  CHECK_NE(i, j) << "self-edge";
  CHECK_LT(i, num_objects());
  CHECK_LT(j, num_objects());
  CHECK_GE(d, 0.0) << "negative distance from oracle";
  const bool inserted = edge_map_.emplace(EdgeKey(i, j), d).second;
  CHECK(inserted) << "duplicate edge (" << i << ", " << j << ")";
  InsertSorted(&adjacency_[i], j, d);
  InsertSorted(&adjacency_[j], i, d);
  edges_.push_back(WeightedEdge{i, j, d});
}

}  // namespace metricprox
