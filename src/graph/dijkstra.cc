#include "graph/dijkstra.h"

#include "graph/indexed_heap.h"

namespace metricprox {

DijkstraSolver::DijkstraSolver(ObjectId num_objects)
    : num_objects_(num_objects) {
  touched_.reserve(num_objects);
}

void DijkstraSolver::Solve(const PartialDistanceGraph& graph, ObjectId source,
                           std::vector<double>* out) {
  Solve(graph, source, out, nullptr);
}

void DijkstraSolver::Solve(const PartialDistanceGraph& graph, ObjectId source,
                           std::vector<double>* out,
                           std::vector<ObjectId>* parent) {
  CHECK_EQ(graph.num_objects(), num_objects_);
  CHECK_LT(source, num_objects_);
  out->assign(num_objects_, kInfDistance);
  (*out)[source] = 0.0;
  if (parent != nullptr) parent->assign(num_objects_, kInvalidObject);

  IndexedMinHeap heap(num_objects_);
  heap.Push(source, 0.0);
  while (!heap.empty()) {
    const double du = heap.TopKey();
    const ObjectId u = heap.Pop();
    // Settled entries never re-enter the heap because we only push a node
    // when the relaxation strictly improves its tentative distance.
    for (const PartialDistanceGraph::Neighbor& nb : graph.Neighbors(u)) {
      const double candidate = du + nb.distance;
      if (candidate < (*out)[nb.id]) {
        (*out)[nb.id] = candidate;
        if (parent != nullptr) (*parent)[nb.id] = u;
        heap.PushOrDecrease(nb.id, candidate);
      }
    }
  }
}

std::vector<double> DijkstraSolver::ShortestPaths(
    const PartialDistanceGraph& graph, ObjectId source) {
  DijkstraSolver solver(graph.num_objects());
  std::vector<double> out;
  solver.Solve(graph, source, &out);
  return out;
}

}  // namespace metricprox
