#include "graph/concurrent_graph.h"

#include <algorithm>

namespace metricprox {

namespace {

/// The shared epoch returned for nodes that have never been touched, so
/// AdjacencySnapshot never hands out null.
const ConcurrentDistanceGraph::Snapshot& EmptyColumns() {
  static const ConcurrentDistanceGraph::Snapshot empty =
      std::make_shared<const ConcurrentDistanceGraph::NodeColumns>();
  return empty;
}

}  // namespace

ConcurrentDistanceGraph::ConcurrentDistanceGraph(ObjectId num_objects,
                                                 size_t num_shards)
    : num_objects_(num_objects),
      num_shards_(num_shards == 0 ? 1 : num_shards),
      edge_shards_(num_shards_),
      node_shards_(num_shards_),
      columns_(num_objects) {}

bool ConcurrentDistanceGraph::Has(ObjectId i, ObjectId j) const {
  return Get(i, j).has_value();
}

std::optional<double> ConcurrentDistanceGraph::Get(ObjectId i,
                                                   ObjectId j) const {
  const EdgeKey key(i, j);
  const EdgeShard& shard = edge_shards_[EdgeShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.edges.find(key);
  if (it == shard.edges.end()) return std::nullopt;
  return it->second;
}

void ConcurrentDistanceGraph::ValidateEdge(ObjectId i, ObjectId j,
                                           double d) const {
  CHECK_NE(i, j) << "self-edge";
  CHECK_LT(i, num_objects_);
  CHECK_LT(j, num_objects_);
  CHECK_GE(d, 0.0) << "negative distance from oracle";
}

bool ConcurrentDistanceGraph::EmplaceEdge(ObjectId i, ObjectId j, double d) {
  const EdgeKey key(i, j);
  EdgeShard& shard = edge_shards_[EdgeShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.edges.emplace(key, d);
  if (!inserted) {
    CHECK_EQ(it->second, d)
        << "conflicting duplicate edge (" << i << ", " << j << ")";
  }
  return inserted;
}

void ConcurrentDistanceGraph::PublishNeighbors(
    ObjectId i, std::span<const PartialDistanceGraph::Neighbor> add) {
  if (add.empty()) return;
  NodeShard& shard = node_shards_[NodeShardOf(i)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const Snapshot& current = columns_[i] ? columns_[i] : EmptyColumns();
  auto next = std::make_shared<NodeColumns>();
  next->ids.reserve(current->ids.size() + add.size());
  next->distances.reserve(current->distances.size() + add.size());
  // Linear merge of the existing (sorted) columns with the sorted additions
  // — one pass, and the new epoch is fully built before the swap below
  // makes it visible.
  size_t x = 0;
  size_t y = 0;
  while (x < current->ids.size() || y < add.size()) {
    const bool take_add =
        x == current->ids.size() ||
        (y < add.size() && add[y].id < current->ids[x]);
    if (take_add) {
      next->ids.push_back(add[y].id);
      next->distances.push_back(add[y].distance);
      ++y;
    } else {
      next->ids.push_back(current->ids[x]);
      next->distances.push_back(current->distances[x]);
      ++x;
    }
  }
  columns_[i] = std::move(next);
}

bool ConcurrentDistanceGraph::Insert(ObjectId i, ObjectId j, double d) {
  ValidateEdge(i, j, d);
  if (!EmplaceEdge(i, j, d)) return false;
  const PartialDistanceGraph::Neighbor to_i{j, d};
  const PartialDistanceGraph::Neighbor to_j{i, d};
  PublishNeighbors(i, std::span<const PartialDistanceGraph::Neighbor>(&to_i, 1));
  PublishNeighbors(j, std::span<const PartialDistanceGraph::Neighbor>(&to_j, 1));
  return true;
}

size_t ConcurrentDistanceGraph::InsertEdges(
    std::span<const WeightedEdge> batch) {
  // Claim edges in the striped map first (the authority for duplicates),
  // then group the fresh ones per node so each node's adjacency is
  // published in exactly one epoch swap.
  std::unordered_map<ObjectId,
                     std::vector<PartialDistanceGraph::Neighbor>>
      per_node;
  size_t fresh = 0;
  for (const WeightedEdge& e : batch) {
    ValidateEdge(e.u, e.v, e.weight);
    if (!EmplaceEdge(e.u, e.v, e.weight)) continue;
    ++fresh;
    per_node[e.u].push_back({e.v, e.weight});
    per_node[e.v].push_back({e.u, e.weight});
  }
  for (auto& [node, add] : per_node) {
    std::sort(add.begin(), add.end(),
              [](const PartialDistanceGraph::Neighbor& a,
                 const PartialDistanceGraph::Neighbor& b) {
                return a.id < b.id;
              });
    PublishNeighbors(node, add);
  }
  return fresh;
}

ConcurrentDistanceGraph::Snapshot ConcurrentDistanceGraph::AdjacencySnapshot(
    ObjectId i) const {
  DCHECK_LT(i, columns_.size());
  const NodeShard& shard = node_shards_[NodeShardOf(i)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return columns_[i] ? columns_[i] : EmptyColumns();
}

size_t ConcurrentDistanceGraph::num_edges() const {
  size_t total = 0;
  for (const EdgeShard& shard : edge_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.edges.size();
  }
  return total;
}

std::vector<WeightedEdge> ConcurrentDistanceGraph::Edges() const {
  std::vector<WeightedEdge> out;
  for (const EdgeShard& shard : edge_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.reserve(out.size() + shard.edges.size());
    for (const auto& [key, d] : shard.edges) {
      out.push_back(WeightedEdge{key.lo(), key.hi(), d});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return EdgeKey(a.u, a.v) < EdgeKey(b.u, b.v);
            });
  return out;
}

}  // namespace metricprox
