#ifndef METRICPROX_GRAPH_INDEXED_HEAP_H_
#define METRICPROX_GRAPH_INDEXED_HEAP_H_

#include <cstdint>
#include <vector>

#include "core/logging.h"

namespace metricprox {

/// Binary min-heap over a fixed id universe [0, capacity) with
/// decrease-key, as used by Dijkstra and Prim.
///
/// Keys are doubles; ties broken by smaller id for determinism. All
/// operations are O(log size) except Contains/KeyOf which are O(1).
class IndexedMinHeap {
 public:
  /// Creates an empty heap able to hold ids in [0, capacity).
  explicit IndexedMinHeap(uint32_t capacity)
      : position_(capacity, kAbsent) {}

  bool empty() const { return entries_.empty(); }
  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }
  bool Contains(uint32_t id) const {
    DCHECK_LT(id, position_.size());
    return position_[id] != kAbsent;
  }

  /// Key currently associated with `id`; requires Contains(id).
  double KeyOf(uint32_t id) const {
    DCHECK(Contains(id));
    return entries_[position_[id]].key;
  }

  /// Inserts `id` with `key`; requires !Contains(id).
  void Push(uint32_t id, double key) {
    DCHECK(!Contains(id));
    position_[id] = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{key, id});
    SiftUp(static_cast<uint32_t>(entries_.size()) - 1);
  }

  /// Lowers the key of `id` to `key`; requires Contains(id) and
  /// key <= KeyOf(id).
  void DecreaseKey(uint32_t id, double key) {
    DCHECK(Contains(id));
    uint32_t pos = position_[id];
    DCHECK_LE(key, entries_[pos].key);
    entries_[pos].key = key;
    SiftUp(pos);
  }

  /// Inserts or lowers: no-op if present with a smaller-or-equal key.
  void PushOrDecrease(uint32_t id, double key) {
    if (!Contains(id)) {
      Push(id, key);
    } else if (key < KeyOf(id)) {
      DecreaseKey(id, key);
    }
  }

  /// Id with the minimum key; requires !empty().
  uint32_t Top() const {
    DCHECK(!empty());
    return entries_[0].id;
  }

  /// Key of the minimum entry; requires !empty().
  double TopKey() const {
    DCHECK(!empty());
    return entries_[0].key;
  }

  /// Removes and returns the id with the minimum key; requires !empty().
  uint32_t Pop() {
    DCHECK(!empty());
    const uint32_t top = entries_[0].id;
    RemoveAt(0);
    return top;
  }

 private:
  struct Entry {
    double key;
    uint32_t id;
  };

  static constexpr uint32_t kAbsent = 0xffffffffu;

  bool Less(const Entry& a, const Entry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void RemoveAt(uint32_t pos) {
    position_[entries_[pos].id] = kAbsent;
    const uint32_t last = static_cast<uint32_t>(entries_.size()) - 1;
    if (pos != last) {
      entries_[pos] = entries_[last];
      position_[entries_[pos].id] = pos;
      entries_.pop_back();
      if (!SiftUp(pos)) SiftDown(pos);
    } else {
      entries_.pop_back();
    }
  }

  // Returns true if the entry moved.
  bool SiftUp(uint32_t pos) {
    bool moved = false;
    while (pos > 0) {
      const uint32_t parent = (pos - 1) / 2;
      if (!Less(entries_[pos], entries_[parent])) break;
      SwapEntries(pos, parent);
      pos = parent;
      moved = true;
    }
    return moved;
  }

  void SiftDown(uint32_t pos) {
    const uint32_t n = static_cast<uint32_t>(entries_.size());
    while (true) {
      uint32_t best = pos;
      const uint32_t left = 2 * pos + 1;
      const uint32_t right = 2 * pos + 2;
      if (left < n && Less(entries_[left], entries_[best])) best = left;
      if (right < n && Less(entries_[right], entries_[best])) best = right;
      if (best == pos) break;
      SwapEntries(pos, best);
      pos = best;
    }
  }

  void SwapEntries(uint32_t a, uint32_t b) {
    std::swap(entries_[a], entries_[b]);
    position_[entries_[a].id] = a;
    position_[entries_[b].id] = b;
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> position_;
};

}  // namespace metricprox

#endif  // METRICPROX_GRAPH_INDEXED_HEAP_H_
