#ifndef METRICPROX_GRAPH_DIJKSTRA_H_
#define METRICPROX_GRAPH_DIJKSTRA_H_

#include <vector>

#include "core/types.h"
#include "graph/partial_graph.h"

namespace metricprox {

/// Single-source shortest paths over the resolved edges of a
/// PartialDistanceGraph (standard binary-heap Dijkstra, O(m + n log n)-ish).
///
/// Unreachable nodes get kInfDistance. A reusable instance keeps its
/// scratch buffers allocated across calls, which matters when SPLUB issues
/// one call per bound query.
class DijkstraSolver {
 public:
  explicit DijkstraSolver(ObjectId num_objects);

  /// Fills `out` (resized to num_objects) with shortest-path distances from
  /// `source` over the known edges of `graph`.
  void Solve(const PartialDistanceGraph& graph, ObjectId source,
             std::vector<double>* out);

  /// Variant that also records the shortest-path tree: parent[v] is the
  /// predecessor of v on the found path (kInvalidObject for the source and
  /// for unreachable nodes). Distances are identical to the plain Solve —
  /// same relaxations in the same order — so certificate extraction can
  /// use this without perturbing any memoized decision state.
  void Solve(const PartialDistanceGraph& graph, ObjectId source,
             std::vector<double>* out, std::vector<ObjectId>* parent);

  /// One-shot convenience.
  static std::vector<double> ShortestPaths(const PartialDistanceGraph& graph,
                                           ObjectId source);

 private:
  ObjectId num_objects_;
  // Scratch reused across Solve() calls.
  std::vector<uint32_t> touched_;
};

}  // namespace metricprox

#endif  // METRICPROX_GRAPH_DIJKSTRA_H_
