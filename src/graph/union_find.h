#ifndef METRICPROX_GRAPH_UNION_FIND_H_
#define METRICPROX_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/logging.h"

namespace metricprox {

/// Disjoint-set forest with union by rank and path halving.
/// Used by Kruskal's algorithm and by connectivity checks in generators.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n), rank_(n, 0), components_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  /// Representative of x's component (amortized near-constant).
  uint32_t Find(uint32_t x) {
    DCHECK_LT(x, parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Merges the components of a and b; returns false if already merged.
  bool Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --components_;
    return true;
  }

  uint32_t num_components() const { return components_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  uint32_t components_;
};

}  // namespace metricprox

#endif  // METRICPROX_GRAPH_UNION_FIND_H_
