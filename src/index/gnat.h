#ifndef METRICPROX_INDEX_GNAT_H_
#define METRICPROX_INDEX_GNAT_H_

#include <cstdint>
#include <vector>

#include "algo/knn_graph.h"
#include "bounds/pivots.h"
#include "core/types.h"

namespace metricprox {

struct GnatOptions {
  /// Split points (= children) per internal node.
  uint32_t degree = 6;
  /// Node sets at or below this size become leaf buckets.
  uint32_t leaf_size = 12;
  uint64_t seed = 1;
};

/// Geometric Near-neighbor Access Tree (Brin, VLDB 1995) — the related-work
/// §6.1 index inspired by Voronoi diagrams. Each internal node picks
/// `degree` far-spread split points, assigns every member to its nearest
/// split point, and records for every (split point, child) pair the
/// [min, max] *range* of distances from that split point into that child's
/// subtree. A query eliminates whole children without entering them when
/// the annulus [d(q,p) - tau, d(q,p) + tau] misses the recorded range —
/// one oracle call per split point can kill many subtrees.
///
/// All oracle calls flow through the supplied ResolveFn; results are exact
/// under (distance, id) ordering.
class Gnat {
 public:
  /// Builds over objects 0..n-1.
  Gnat(ObjectId n, const GnatOptions& options, const ResolveFn& resolve);

  /// Exact range query (radius inclusive), ascending (distance, id); the
  /// query object itself is excluded.
  std::vector<KnnNeighbor> Range(ObjectId query, double radius,
                                 const ResolveFn& resolve) const;

  /// Exact k nearest neighbors, ascending (distance, id).
  std::vector<KnnNeighbor> Knn(ObjectId query, uint32_t k,
                               const ResolveFn& resolve) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Band {
    double lo = kInfDistance;
    double hi = 0.0;
  };
  struct Node {
    // Parallel arrays: split point i routes to children[i].
    std::vector<ObjectId> splits;
    std::vector<int32_t> children;  // -1 when that child is empty
    // ranges[i * splits.size() + j]: distance band from splits[i] into
    // child j's subtree (split point included).
    std::vector<Band> ranges;
    // Leaf bucket (non-empty only for leaves).
    std::vector<ObjectId> bucket;
  };

  int32_t Build(std::vector<ObjectId> members, const GnatOptions& options,
                const ResolveFn& resolve, uint64_t* rng_state);

  // Exact search shared by Range (fixed tau) and Knn (shrinking tau via
  // the callback's return value).
  template <typename Emit>
  void Visit(int32_t node, ObjectId query, const ResolveFn& resolve,
             const double* tau, Emit&& emit) const;

  ObjectId n_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace metricprox

#endif  // METRICPROX_INDEX_GNAT_H_
