#include "index/fqt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/logging.h"

namespace metricprox {

namespace {

uint64_t NextRandom(uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct HeapLess {
  bool operator()(const KnnNeighbor& a, const KnnNeighbor& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

}  // namespace

Fqt::Fqt(ObjectId n, const FqtOptions& options, const ResolveFn& resolve)
    : n_(n), bucket_width_(options.bucket_width) {
  CHECK_GE(n, 2u);
  CHECK_GT(options.bucket_width, 0.0);
  CHECK_GE(options.max_depth, 1u);
  // Level pivots: deterministic pseudo-random distinct objects.
  uint64_t rng_state = options.seed;
  std::vector<bool> used(n, false);
  for (uint32_t level = 0; level < options.max_depth; ++level) {
    ObjectId pivot;
    do {
      pivot = static_cast<ObjectId>(NextRandom(&rng_state) % n);
    } while (used[pivot] && level < n);
    used[pivot] = true;
    level_pivots_.push_back(pivot);
  }

  std::vector<ObjectId> members(n);
  for (ObjectId o = 0; o < n; ++o) members[o] = o;
  root_ = Build(std::move(members), 0, options, resolve);
}

int32_t Fqt::Build(std::vector<ObjectId> members, uint32_t depth,
                   const FqtOptions& options, const ResolveFn& resolve) {
  const int32_t index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (members.size() <= options.leaf_size ||
      depth >= level_pivots_.size()) {
    nodes_[static_cast<size_t>(index)].bucket = std::move(members);
    return index;
  }

  const ObjectId pivot = level_pivots_[depth];
  std::map<int64_t, std::vector<ObjectId>> buckets;
  for (const ObjectId o : members) {
    const double d = o == pivot ? 0.0 : resolve(pivot, o);
    buckets[static_cast<int64_t>(std::floor(d / bucket_width_))].push_back(o);
  }
  if (buckets.size() == 1) {
    // The pivot cannot distinguish these members at this width; descend a
    // level (a later pivot may) rather than looping on the same content.
    nodes_.pop_back();
    return Build(std::move(buckets.begin()->second), depth + 1, options,
                 resolve);
  }
  for (auto& [key, subset] : buckets) {
    const int32_t child = Build(std::move(subset), depth + 1, options, resolve);
    nodes_[static_cast<size_t>(index)].children.emplace(key, child);
  }
  return index;
}

std::vector<KnnNeighbor> Fqt::Range(ObjectId query, double radius,
                                    const ResolveFn& resolve) const {
  CHECK_GE(radius, 0.0);
  CHECK_LT(query, n_);
  std::vector<KnnNeighbor> hits;
  // One pivot distance per level, shared across every surviving branch —
  // the "fixed queries" property.
  std::vector<double> level_distance(level_pivots_.size(), -1.0);

  struct Frame {
    int32_t node;
    uint32_t depth;
  };
  std::vector<Frame> stack{{root_, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(frame.node)];
    for (const ObjectId o : node.bucket) {
      if (o == query) continue;
      const double d = resolve(query, o);
      if (d <= radius) hits.push_back(KnnNeighbor{o, d});
    }
    if (node.children.empty()) continue;

    double& dq = level_distance[frame.depth];
    if (dq < 0.0) {
      const ObjectId pivot = level_pivots_[frame.depth];
      dq = pivot == query ? 0.0 : resolve(query, pivot);
    }
    const int64_t lo_key = static_cast<int64_t>(
        std::floor(std::max(0.0, dq - radius) / bucket_width_));
    const int64_t hi_key =
        static_cast<int64_t>(std::floor((dq + radius) / bucket_width_));
    for (auto it = node.children.lower_bound(lo_key);
         it != node.children.end() && it->first <= hi_key; ++it) {
      stack.push_back(Frame{it->second, frame.depth + 1});
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  return hits;
}

std::vector<KnnNeighbor> Fqt::Knn(ObjectId query, uint32_t k,
                                  const ResolveFn& resolve) const {
  CHECK_GE(k, 1u);
  CHECK_GT(n_, k);
  CHECK_LT(query, n_);
  std::priority_queue<KnnNeighbor, std::vector<KnnNeighbor>, HeapLess> best;
  double tau = kInfDistance;
  std::vector<double> level_distance(level_pivots_.size(), -1.0);

  const auto offer = [&](ObjectId o, double d) {
    const KnnNeighbor candidate{o, d};
    if (best.size() < k) {
      best.push(candidate);
    } else if (HeapLess()(candidate, best.top())) {
      best.pop();
      best.push(candidate);
    }
    if (best.size() == k) tau = best.top().distance;
  };

  struct Frame {
    int32_t node;
    uint32_t depth;
  };
  std::vector<Frame> stack{{root_, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(frame.node)];
    for (const ObjectId o : node.bucket) {
      if (o != query) offer(o, resolve(query, o));
    }
    if (node.children.empty()) continue;

    double& dq = level_distance[frame.depth];
    if (dq < 0.0) {
      const ObjectId pivot = level_pivots_[frame.depth];
      dq = pivot == query ? 0.0 : resolve(query, pivot);
    }
    // Children pushed in key order; pruning re-checked against the current
    // tau at pop time would be tighter, but band checks are callless, so a
    // conservative push-time check is both exact and cheap.
    const double reach = tau == kInfDistance ? kInfDistance : tau;
    const int64_t lo_key =
        reach == kInfDistance
            ? std::numeric_limits<int64_t>::min()
            : static_cast<int64_t>(
                  std::floor(std::max(0.0, dq - reach) / bucket_width_));
    const int64_t hi_key =
        reach == kInfDistance
            ? std::numeric_limits<int64_t>::max()
            : static_cast<int64_t>(std::floor((dq + reach) / bucket_width_));
    for (auto it = node.children.begin(); it != node.children.end(); ++it) {
      if (it->first < lo_key || it->first > hi_key) continue;
      stack.push_back(Frame{it->second, frame.depth + 1});
    }
  }

  std::vector<KnnNeighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

}  // namespace metricprox
