#include "index/mtree.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "core/logging.h"

namespace metricprox {

namespace {

struct HeapLess {
  bool operator()(const KnnNeighbor& a, const KnnNeighbor& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

// d(a, b) with the self-distance short-circuit oracles do not accept.
double Dist(const ResolveFn& resolve, ObjectId a, ObjectId b) {
  return a == b ? 0.0 : resolve(a, b);
}

}  // namespace

MTree::MTree(ObjectId n, const MTreeOptions& options,
             const ResolveFn& resolve)
    : capacity_(options.node_capacity) {
  CHECK_GE(n, 2u);
  CHECK_GE(capacity_, 2u);
  nodes_.emplace_back();  // empty root leaf
  root_ = 0;
  for (ObjectId o = 0; o < n; ++o) {
    SplitResult split;
    if (InsertRecursive(root_, kInvalidObject, o, resolve, &split)) {
      // Grow a new root above the two halves.
      Node new_root;
      new_root.is_leaf = false;
      split.replace.parent_distance = 0.0;
      split.add.parent_distance = 0.0;
      new_root.entries = {split.replace, split.add};
      nodes_.push_back(std::move(new_root));
      root_ = static_cast<int32_t>(nodes_.size()) - 1;
      ++height_;
    }
  }
}

bool MTree::InsertRecursive(int32_t node_index, ObjectId node_pivot,
                            ObjectId o, const ResolveFn& resolve,
                            SplitResult* split) {
  if (nodes_[static_cast<size_t>(node_index)].is_leaf) {
    // parent_distance is stamped by the caller below (the routing level
    // already computed d(o, leaf pivot) during choose-subtree); at the
    // root leaf it stays 0.
    nodes_[static_cast<size_t>(node_index)].entries.push_back(
        Entry{o, 0.0, 0.0, -1});
    if (nodes_[static_cast<size_t>(node_index)].entries.size() > capacity_) {
      *split = SplitNode(node_index, resolve);
      return true;
    }
    return false;
  }

  // Choose the subtree: prefer entries already covering o (minimum
  // distance); otherwise minimize the radius enlargement.
  size_t best_idx = 0;
  double best_distance = 0.0;
  {
    const Node& node = nodes_[static_cast<size_t>(node_index)];
    double best_key = kInfDistance;
    bool best_covers = false;
    for (size_t idx = 0; idx < node.entries.size(); ++idx) {
      const Entry& e = node.entries[idx];
      const double d = Dist(resolve, o, e.object);
      const bool covers = d <= e.radius;
      const double key = covers ? d : d - e.radius;
      if ((covers && !best_covers) ||
          (covers == best_covers && key < best_key)) {
        best_covers = covers;
        best_key = key;
        best_idx = idx;
        best_distance = d;
      }
    }
  }
  {
    Entry& chosen = nodes_[static_cast<size_t>(node_index)].entries[best_idx];
    if (best_distance > chosen.radius) chosen.radius = best_distance;
  }
  const int32_t child =
      nodes_[static_cast<size_t>(node_index)].entries[best_idx].child;
  const ObjectId chosen_pivot =
      nodes_[static_cast<size_t>(node_index)].entries[best_idx].object;

  SplitResult child_split;
  const bool overflowed =
      InsertRecursive(child, chosen_pivot, o, resolve, &child_split);
  if (!overflowed) {
    // Stamp the freshly inserted leaf entry's parent distance if the child
    // is a leaf (the recursion appended it last).
    Node& child_node = nodes_[static_cast<size_t>(child)];
    if (child_node.is_leaf && child_node.entries.back().object == o) {
      child_node.entries.back().parent_distance = best_distance;
    }
    return false;
  }

  // The child split into (replace, add): both routing entries now hang in
  // this node, so their parent distances reference this node's pivot.
  // (With calls routed through a BoundedResolver these are usually cache
  // hits — the promoted pivots were just measured during the split.)
  const auto stamp = [&](Entry* e) {
    e->parent_distance = node_pivot == kInvalidObject
                             ? 0.0
                             : Dist(resolve, e->object, node_pivot);
  };
  stamp(&child_split.replace);
  stamp(&child_split.add);

  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.entries[best_idx] = child_split.replace;
  node.entries.push_back(child_split.add);
  if (node.entries.size() > capacity_) {
    *split = SplitNode(node_index, resolve);
    return true;
  }
  return false;
}

MTree::SplitResult MTree::SplitNode(int32_t node_index,
                                    const ResolveFn& resolve) {
  // Copy out the overflowing entries (nodes_ may reallocate below).
  std::vector<Entry> entries =
      std::move(nodes_[static_cast<size_t>(node_index)].entries);
  const bool is_leaf = nodes_[static_cast<size_t>(node_index)].is_leaf;
  const size_t count = entries.size();

  // Pairwise distances between entry objects; promote the farthest pair
  // (deterministic ties by index).
  std::vector<double> d(count * count, 0.0);
  for (size_t a = 0; a < count; ++a) {
    for (size_t b = a + 1; b < count; ++b) {
      const double dist = Dist(resolve, entries[a].object, entries[b].object);
      d[a * count + b] = dist;
      d[b * count + a] = dist;
    }
  }
  size_t pa = 0;
  size_t pb = 1;
  for (size_t a = 0; a < count; ++a) {
    for (size_t b = a + 1; b < count; ++b) {
      if (d[a * count + b] > d[pa * count + pb]) {
        pa = a;
        pb = b;
      }
    }
  }

  // Generalized-hyperplane partition around the promoted pivots.
  Node part_a;
  Node part_b;
  part_a.is_leaf = is_leaf;
  part_b.is_leaf = is_leaf;
  double radius_a = 0.0;
  double radius_b = 0.0;
  for (size_t idx = 0; idx < count; ++idx) {
    const double da = d[idx * count + pa];
    const double db = d[idx * count + pb];
    const bool to_a = (idx == pa) || (idx != pb && da <= db);
    Entry moved = entries[idx];
    moved.parent_distance = to_a ? da : db;
    const double reach =
        (to_a ? da : db) + (is_leaf ? 0.0 : moved.radius);
    if (to_a) {
      part_a.entries.push_back(moved);
      radius_a = std::max(radius_a, reach);
    } else {
      part_b.entries.push_back(moved);
      radius_b = std::max(radius_b, reach);
    }
  }

  const ObjectId pivot_a = entries[pa].object;
  const ObjectId pivot_b = entries[pb].object;
  nodes_[static_cast<size_t>(node_index)] = std::move(part_a);
  nodes_.push_back(std::move(part_b));
  const int32_t new_index = static_cast<int32_t>(nodes_.size()) - 1;

  SplitResult split;
  // parent_distance is stamped by whoever files these entries.
  split.replace = Entry{pivot_a, 0.0, radius_a, node_index};
  split.add = Entry{pivot_b, 0.0, radius_b, new_index};
  return split;
}

std::vector<KnnNeighbor> MTree::Range(ObjectId query, double radius,
                                      const ResolveFn& resolve) const {
  CHECK_GE(radius, 0.0);
  std::vector<KnnNeighbor> hits;

  // (node, d(query, node pivot), pivot known?) — the root has no pivot.
  struct Frame {
    int32_t node;
    double d_pivot;
    bool has_pivot;
  };
  std::vector<Frame> stack{{root_, 0.0, false}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(frame.node)];
    for (const Entry& e : node.entries) {
      // Parent-distance pruning: discards without an oracle call.
      if (frame.has_pivot &&
          std::abs(frame.d_pivot - e.parent_distance) > radius + e.radius) {
        continue;
      }
      const double d = Dist(resolve, query, e.object);
      if (node.is_leaf) {
        if (e.object != query && d <= radius) {
          hits.push_back(KnnNeighbor{e.object, d});
        }
      } else if (d <= radius + e.radius) {
        stack.push_back(Frame{e.child, d, true});
      }
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  return hits;
}

std::vector<KnnNeighbor> MTree::Knn(ObjectId query, uint32_t k,
                                    const ResolveFn& resolve) const {
  CHECK_GE(k, 1u);
  std::priority_queue<KnnNeighbor, std::vector<KnnNeighbor>, HeapLess> best;
  double tau = kInfDistance;

  struct Frame {
    double d_min;  // lower bound on any distance inside this subtree
    int32_t node;
    double d_pivot;
    bool has_pivot;
  };
  struct FrameGreater {
    bool operator()(const Frame& a, const Frame& b) const {
      if (a.d_min != b.d_min) return a.d_min > b.d_min;
      return a.node > b.node;
    }
  };
  std::priority_queue<Frame, std::vector<Frame>, FrameGreater> queue;
  queue.push(Frame{0.0, root_, 0.0, false});

  const auto offer = [&](ObjectId o, double d) {
    if (o == query) return;
    const KnnNeighbor candidate{o, d};
    if (best.size() < k) {
      best.push(candidate);
    } else if (HeapLess()(candidate, best.top())) {
      best.pop();
      best.push(candidate);
    }
    if (best.size() == k) tau = best.top().distance;
  };

  while (!queue.empty()) {
    const Frame frame = queue.top();
    queue.pop();
    if (frame.d_min > tau) break;  // best-first: nothing closer remains
    const Node& node = nodes_[static_cast<size_t>(frame.node)];
    for (const Entry& e : node.entries) {
      if (frame.has_pivot &&
          std::abs(frame.d_pivot - e.parent_distance) - e.radius > tau) {
        continue;  // pruned without an oracle call
      }
      const double d = Dist(resolve, query, e.object);
      if (node.is_leaf) {
        offer(e.object, d);
      } else {
        const double d_min = std::max(0.0, d - e.radius);
        if (d_min <= tau) queue.push(Frame{d_min, e.child, d, true});
      }
    }
  }

  std::vector<KnnNeighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

void MTree::CollectSubtree(int32_t node_index,
                           std::vector<ObjectId>* out) const {
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  for (const Entry& e : node.entries) {
    if (node.is_leaf) {
      out->push_back(e.object);
    } else {
      CollectSubtree(e.child, out);
    }
  }
}

void MTree::ValidateInvariants(ObjectId n, const ResolveFn& resolve) const {
  // Every object stored exactly once.
  std::vector<ObjectId> all;
  CollectSubtree(root_, &all);
  CHECK_EQ(all.size(), static_cast<size_t>(n));
  std::set<ObjectId> unique(all.begin(), all.end());
  CHECK_EQ(unique.size(), static_cast<size_t>(n));

  // Covering radii contain their subtrees; parent distances are exact.
  struct Frame {
    int32_t node;
    ObjectId pivot;
    bool has_pivot;
  };
  std::vector<Frame> stack{{root_, kInvalidObject, false}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(frame.node)];
    for (const Entry& e : node.entries) {
      if (frame.has_pivot) {
        CHECK_LE(std::abs(e.parent_distance -
                          Dist(resolve, e.object, frame.pivot)),
                 1e-9)
            << "stale parent distance";
      }
      if (node.is_leaf) continue;
      std::vector<ObjectId> members;
      CollectSubtree(e.child, &members);
      for (const ObjectId o : members) {
        CHECK_LE(Dist(resolve, o, e.object), e.radius + 1e-9)
            << "covering radius violated for pivot " << e.object;
      }
      stack.push_back(Frame{e.child, e.object, true});
    }
  }
}

}  // namespace metricprox
