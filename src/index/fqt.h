#ifndef METRICPROX_INDEX_FQT_H_
#define METRICPROX_INDEX_FQT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "algo/knn_graph.h"
#include "bounds/pivots.h"
#include "core/types.h"

namespace metricprox {

struct FqtOptions {
  /// Bucket width for discretizing distances into child keys. Continuous
  /// metrics need a width comparable to the query radii of interest;
  /// integer metrics (edit distance) work naturally with width 1.
  double bucket_width = 1.0;
  /// Maximum pivot levels (also bounds query cost: one call per level).
  uint32_t max_depth = 16;
  /// Sets at or below this size become leaf buckets.
  uint32_t leaf_size = 4;
  uint64_t seed = 1;
};

/// Fixed-Queries Tree (Baeza-Yates, Cunto, Manber & Wu 1994) — the §6.1
/// index whose defining trick is that *every node at the same depth shares
/// one pivot*. A query therefore computes at most `max_depth` pivot
/// distances total, no matter how many branches survive; children are
/// keyed by the discretized distance to the level pivot and pruned by the
/// triangle inequality (|d(q,p) - d(x,p)| <= tau band intersection).
///
/// All oracle calls flow through the supplied ResolveFn; results are exact
/// under (distance, id) ordering.
class Fqt {
 public:
  /// Builds over objects 0..n-1. Level pivots are chosen by max-min
  /// farthest-first selection over the whole set.
  Fqt(ObjectId n, const FqtOptions& options, const ResolveFn& resolve);

  /// Exact range query (radius inclusive), ascending (distance, id); the
  /// query object itself is excluded.
  std::vector<KnnNeighbor> Range(ObjectId query, double radius,
                                 const ResolveFn& resolve) const;

  /// Exact k nearest neighbors, ascending (distance, id).
  std::vector<KnnNeighbor> Knn(ObjectId query, uint32_t k,
                               const ResolveFn& resolve) const;

  size_t num_nodes() const { return nodes_.size(); }
  uint32_t num_levels() const {
    return static_cast<uint32_t>(level_pivots_.size());
  }

 private:
  struct Node {
    // Child bucket key -> node index (keys are floor(d / bucket_width)).
    std::map<int64_t, int32_t> children;
    // Non-empty only for leaves.
    std::vector<ObjectId> bucket;
  };

  int32_t Build(std::vector<ObjectId> members, uint32_t depth,
                const FqtOptions& options, const ResolveFn& resolve);

  ObjectId n_;
  double bucket_width_;
  std::vector<ObjectId> level_pivots_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace metricprox

#endif  // METRICPROX_INDEX_FQT_H_
