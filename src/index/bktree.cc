#include "index/bktree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/logging.h"

namespace metricprox {

namespace {

int64_t AsIntegerDistance(double d) {
  const double rounded = std::nearbyint(d);
  CHECK_LE(std::abs(d - rounded), 1e-9)
      << "BK-tree requires integer distances, got " << d;
  CHECK_GE(rounded, 0.0);
  return static_cast<int64_t>(rounded);
}

struct HeapLess {
  bool operator()(const KnnNeighbor& a, const KnnNeighbor& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

}  // namespace

BkTree::BkTree(ObjectId n, const ResolveFn& resolve) {
  CHECK_GE(n, 1u);
  nodes_.reserve(n);
  for (ObjectId o = 0; o < n; ++o) Insert(o, resolve);
}

void BkTree::Insert(ObjectId object, const ResolveFn& resolve) {
  if (nodes_.empty()) {
    nodes_.push_back(Node{object, {}});
    return;
  }
  int32_t current = 0;
  uint32_t level = 0;
  while (true) {
    const int64_t d =
        AsIntegerDistance(resolve(nodes_[current].object, object));
    CHECK_GT(d, 0) << "duplicate object (distance 0) in BK-tree";
    auto it = nodes_[current].children.find(d);
    if (it == nodes_[current].children.end()) {
      const int32_t fresh = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(Node{object, {}});
      nodes_[current].children.emplace(d, fresh);
      depth_ = std::max(depth_, level + 1);
      return;
    }
    current = it->second;
    ++level;
  }
}

std::vector<KnnNeighbor> BkTree::Range(ObjectId query, double radius,
                                       const ResolveFn& resolve) const {
  CHECK_GE(radius, 0.0);
  const int64_t r = static_cast<int64_t>(std::floor(radius + 1e-9));
  std::vector<KnnNeighbor> hits;
  std::vector<int32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    int64_t d = 0;
    if (node.object != query) {
      d = AsIntegerDistance(resolve(query, node.object));
      if (d <= r) {
        hits.push_back(KnnNeighbor{node.object, static_cast<double>(d)});
      }
    }
    // Children with keys in [d - r, d + r] may contain hits.
    const auto lo = node.children.lower_bound(d - r);
    const auto hi = node.children.upper_bound(d + r);
    for (auto it = lo; it != hi; ++it) stack.push_back(it->second);
  }
  std::sort(hits.begin(), hits.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  return hits;
}

std::vector<KnnNeighbor> BkTree::Knn(ObjectId query, uint32_t k,
                                     const ResolveFn& resolve) const {
  CHECK_GE(k, 1u);
  CHECK_GT(nodes_.size(), static_cast<size_t>(k));
  std::priority_queue<KnnNeighbor, std::vector<KnnNeighbor>, HeapLess> best;
  int64_t tau = std::numeric_limits<int64_t>::max();

  std::vector<int32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    int64_t d = 0;
    if (node.object != query) {
      d = AsIntegerDistance(resolve(query, node.object));
      const KnnNeighbor candidate{node.object, static_cast<double>(d)};
      if (best.size() < k) {
        best.push(candidate);
      } else if (HeapLess()(candidate, best.top())) {
        best.pop();
        best.push(candidate);
      }
      if (best.size() == k) {
        tau = static_cast<int64_t>(best.top().distance);
      }
    }
    const int64_t r = best.size() < k ? std::numeric_limits<int64_t>::max()
                                      : tau;
    // Guard against overflow when r is the sentinel.
    const int64_t lo_key = r == std::numeric_limits<int64_t>::max()
                               ? std::numeric_limits<int64_t>::min()
                               : d - r;
    const int64_t hi_key = r == std::numeric_limits<int64_t>::max()
                               ? std::numeric_limits<int64_t>::max()
                               : d + r;
    const auto lo = node.children.lower_bound(lo_key);
    const auto hi = node.children.upper_bound(hi_key);
    for (auto it = lo; it != hi; ++it) stack.push_back(it->second);
  }

  std::vector<KnnNeighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

}  // namespace metricprox
