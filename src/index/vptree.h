#ifndef METRICPROX_INDEX_VPTREE_H_
#define METRICPROX_INDEX_VPTREE_H_

#include <cstdint>
#include <vector>

#include "algo/knn_graph.h"
#include "bounds/pivots.h"
#include "core/types.h"

namespace metricprox {

struct VpTreeOptions {
  /// Subtrees at or below this size become leaves (scanned linearly).
  uint32_t leaf_size = 8;
  uint64_t seed = 1;
};

/// Vantage-point tree (Yianilos 1993) — the classical *index* answer to
/// expensive metric queries, implemented here as a baseline to contrast
/// with the paper's plug-in framework (related work §6.1).
///
/// Construction partitions each node's objects by the median distance to a
/// randomly chosen vantage point (inside/outside the median ball), paying
/// about n log n oracle calls. Queries descend the tree, pruning a branch
/// when the triangle inequality proves it cannot contain a better
/// neighbor; every call made during build or search goes through the
/// supplied ResolveFn, so calls are accounted exactly like the framework's
/// (route it through a BoundedResolver to share the cache).
///
/// Results are exact and deterministic under (distance, id) ordering.
class VpTree {
 public:
  /// Builds over objects 0..n-1. `resolve` performs the oracle calls.
  VpTree(ObjectId n, const VpTreeOptions& options, const ResolveFn& resolve);

  /// Exact k nearest neighbors of `query` (an object in the tree; itself
  /// excluded), ascending by (distance, id).
  std::vector<KnnNeighbor> Knn(ObjectId query, uint32_t k,
                               const ResolveFn& resolve) const;

  /// Exact range query: all objects within `radius` of `query`
  /// (inclusive), ascending by (distance, id).
  std::vector<KnnNeighbor> Range(ObjectId query, double radius,
                                 const ResolveFn& resolve) const;

  size_t num_nodes() const { return nodes_.size(); }
  ObjectId num_objects() const { return n_; }

 private:
  struct Node {
    ObjectId vantage = kInvalidObject;
    double mu = 0.0;        // median distance to the vantage point
    int32_t inside = -1;    // child index: objects with d(o, vp) <= mu
    int32_t outside = -1;   // child index: objects with d(o, vp) > mu
    // Non-empty only for leaves: the members (excluding the vantage).
    std::vector<ObjectId> bucket;
  };

  int32_t Build(std::vector<ObjectId> members, const VpTreeOptions& options,
                const ResolveFn& resolve, uint64_t* rng_state);

  // Best-first exact search shared by Knn (shrinking tau) and Range
  // (fixed tau); `emit` receives every candidate's exact distance.
  template <typename Emit>
  void Visit(int32_t node, ObjectId query, const ResolveFn& resolve,
             const double* tau, Emit&& emit) const;

  ObjectId n_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace metricprox

#endif  // METRICPROX_INDEX_VPTREE_H_
