#include "index/gnat.h"

#include <algorithm>
#include <queue>

#include "core/logging.h"

namespace metricprox {

namespace {

uint64_t NextRandom(uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct HeapLess {
  bool operator()(const KnnNeighbor& a, const KnnNeighbor& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

}  // namespace

Gnat::Gnat(ObjectId n, const GnatOptions& options, const ResolveFn& resolve)
    : n_(n) {
  CHECK_GE(n, 2u);
  CHECK_GE(options.degree, 2u);
  CHECK_GE(options.leaf_size, 1u);
  std::vector<ObjectId> members(n);
  for (ObjectId o = 0; o < n; ++o) members[o] = o;
  uint64_t rng_state = options.seed;
  root_ = Build(std::move(members), options, resolve, &rng_state);
}

int32_t Gnat::Build(std::vector<ObjectId> members, const GnatOptions& options,
                    const ResolveFn& resolve, uint64_t* rng_state) {
  if (members.empty()) return -1;
  const int32_t index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  if (members.size() <= options.leaf_size) {
    nodes_[static_cast<size_t>(index)].bucket = std::move(members);
    return index;
  }

  // Split points by farthest-first selection (the spread Brin recommends).
  const uint32_t degree =
      std::min<uint32_t>(options.degree,
                         static_cast<uint32_t>(members.size()));
  std::vector<ObjectId> splits;
  std::vector<std::vector<double>> split_dist;  // per split: dist to members
  std::vector<double> min_to_split(members.size(), kInfDistance);
  size_t first = NextRandom(rng_state) % members.size();
  for (uint32_t s = 0; s < degree; ++s) {
    const ObjectId pivot = members[first];
    splits.push_back(pivot);
    std::vector<double> row(members.size());
    for (size_t m = 0; m < members.size(); ++m) {
      row[m] =
          members[m] == pivot ? 0.0 : resolve(pivot, members[m]);
      if (row[m] < min_to_split[m]) min_to_split[m] = row[m];
    }
    split_dist.push_back(std::move(row));
    if (s + 1 == degree) break;
    // Next split point: the member farthest from all chosen ones.
    size_t best = 0;
    for (size_t m = 1; m < members.size(); ++m) {
      if (min_to_split[m] > min_to_split[best]) best = m;
    }
    first = best;
  }

  // Assign members to their nearest split point (ties toward the earlier
  // split for determinism).
  std::vector<std::vector<ObjectId>> partitions(degree);
  std::vector<std::vector<size_t>> partition_rows(degree);
  for (size_t m = 0; m < members.size(); ++m) {
    uint32_t owner = 0;
    for (uint32_t s = 1; s < degree; ++s) {
      if (split_dist[s][m] < split_dist[owner][m]) owner = s;
    }
    partitions[owner].push_back(members[m]);
    partition_rows[owner].push_back(m);
  }

  // Distance bands: from every split point into every child's member set.
  Node staged;
  staged.splits = splits;
  staged.children.assign(degree, -1);
  staged.ranges.assign(static_cast<size_t>(degree) * degree, Band{});
  for (uint32_t s = 0; s < degree; ++s) {
    for (uint32_t c = 0; c < degree; ++c) {
      Band& band = staged.ranges[s * degree + c];
      for (const size_t m : partition_rows[c]) {
        const double d = split_dist[s][m];
        if (d < band.lo) band.lo = d;
        if (d > band.hi) band.hi = d;
      }
    }
  }
  nodes_[static_cast<size_t>(index)] = std::move(staged);

  for (uint32_t c = 0; c < degree; ++c) {
    // The split point itself stays at this node (it is reported when the
    // node is visited); the child holds the remaining members.
    std::vector<ObjectId> rest;
    rest.reserve(partitions[c].size());
    for (const ObjectId o : partitions[c]) {
      if (o != splits[c]) rest.push_back(o);
    }
    const int32_t child = Build(std::move(rest), options, resolve, rng_state);
    nodes_[static_cast<size_t>(index)].children[c] = child;
  }
  return index;
}

template <typename Emit>
void Gnat::Visit(int32_t node, ObjectId query, const ResolveFn& resolve,
                 const double* tau, Emit&& emit) const {
  if (node < 0) return;
  const Node& nd = nodes_[static_cast<size_t>(node)];
  for (const ObjectId o : nd.bucket) {
    if (o != query) emit(o, o == query ? 0.0 : resolve(query, o));
  }
  if (nd.splits.empty()) return;

  const uint32_t degree = static_cast<uint32_t>(nd.splits.size());
  std::vector<bool> alive(degree, true);
  for (uint32_t s = 0; s < degree; ++s) {
    if (!alive[s]) continue;
    const double d =
        nd.splits[s] == query ? 0.0 : resolve(query, nd.splits[s]);
    if (nd.splits[s] != query) emit(nd.splits[s], d);
    // Annulus elimination: child c cannot contain anything within tau of
    // the query if [d - tau, d + tau] misses its recorded band from this
    // split point. Non-strict comparisons keep exact ties reachable.
    for (uint32_t c = 0; c < degree; ++c) {
      if (!alive[c] || nd.children[c] < 0) continue;
      const Band& band = nd.ranges[s * degree + c];
      if (band.hi < band.lo) {
        alive[c] = false;  // empty child
        continue;
      }
      if (d - *tau > band.hi || d + *tau < band.lo) alive[c] = false;
    }
  }
  for (uint32_t c = 0; c < degree; ++c) {
    if (alive[c]) Visit(nd.children[c], query, resolve, tau, emit);
  }
}

std::vector<KnnNeighbor> Gnat::Range(ObjectId query, double radius,
                                     const ResolveFn& resolve) const {
  CHECK_GE(radius, 0.0);
  CHECK_LT(query, n_);
  std::vector<KnnNeighbor> hits;
  const double tau = radius;
  Visit(root_, query, resolve, &tau, [&](ObjectId o, double d) {
    if (d <= radius) hits.push_back(KnnNeighbor{o, d});
  });
  std::sort(hits.begin(), hits.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  return hits;
}

std::vector<KnnNeighbor> Gnat::Knn(ObjectId query, uint32_t k,
                                   const ResolveFn& resolve) const {
  CHECK_GE(k, 1u);
  CHECK_LT(query, n_);
  CHECK_GT(n_, k);
  std::priority_queue<KnnNeighbor, std::vector<KnnNeighbor>, HeapLess> best;
  double tau = kInfDistance;
  Visit(root_, query, resolve, &tau, [&](ObjectId o, double d) {
    if (best.size() < k) {
      best.push(KnnNeighbor{o, d});
    } else if (d < best.top().distance ||
               (d == best.top().distance && o < best.top().id)) {
      best.pop();
      best.push(KnnNeighbor{o, d});
    }
    if (best.size() == k) tau = best.top().distance;
  });

  std::vector<KnnNeighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

}  // namespace metricprox
