#ifndef METRICPROX_INDEX_MTREE_H_
#define METRICPROX_INDEX_MTREE_H_

#include <cstdint>
#include <vector>

#include "algo/knn_graph.h"
#include "bounds/pivots.h"
#include "core/types.h"

namespace metricprox {

struct MTreeOptions {
  /// Maximum entries per node before it splits.
  uint32_t node_capacity = 8;
};

/// M-tree (Ciaccia, Patella & Zezula, VLDB 1997) — the canonical *database*
/// index for metric similarity search (related work §6.1), built here as
/// the strongest classical baseline against the paper's framework.
///
/// A balanced tree of covering balls: every routing entry stores a pivot
/// object, a covering radius bounding its whole subtree, and its distance
/// to the parent pivot. Searches exploit two triangle-inequality prunings:
///   1. the *parent-distance* test |d(q,parent) - d(entry,parent)| - r >
///      radius discards an entry **without any oracle call**, and
///   2. the covering-ball test d(q,pivot) - r > radius discards its
///      subtree after one call.
/// Inserts descend to the closest-fitting leaf and split overflowing nodes
/// by promoting the farthest entry pair (generalized-hyperplane
/// partition), propagating splits to the root.
///
/// All oracle calls flow through the supplied ResolveFn (route it through
/// a BoundedResolver to share the framework's cache); results are exact
/// and deterministic under (distance, id) ordering.
class MTree {
 public:
  /// Bulk-builds by inserting objects 0..n-1 in id order.
  MTree(ObjectId n, const MTreeOptions& options, const ResolveFn& resolve);

  /// Exact range query (radius inclusive), ascending (distance, id); the
  /// query object itself is excluded.
  std::vector<KnnNeighbor> Range(ObjectId query, double radius,
                                 const ResolveFn& resolve) const;

  /// Exact k nearest neighbors, ascending (distance, id).
  std::vector<KnnNeighbor> Knn(ObjectId query, uint32_t k,
                               const ResolveFn& resolve) const;

  size_t num_nodes() const { return nodes_.size(); }
  uint32_t height() const { return height_; }

  /// Recomputes every structural invariant with fresh oracle calls:
  /// covering radii contain their subtrees, parent distances are exact,
  /// every object appears exactly once. CHECK-fails on violation
  /// (test-only; O(n log n) calls).
  void ValidateInvariants(ObjectId n, const ResolveFn& resolve) const;

 private:
  struct Entry {
    ObjectId object;          // pivot (routing) or data object (leaf)
    double parent_distance;   // d(object, owning node's pivot); 0 at root
    double radius;            // covering radius; 0 for leaf entries
    int32_t child;            // subtree node; -1 for leaf entries
  };
  struct Node {
    bool is_leaf = true;
    std::vector<Entry> entries;
  };

  // Outcome of an insert that overflowed: the caller replaces the child's
  // routing entry with `replace` and additionally files `add`.
  struct SplitResult {
    Entry replace;
    Entry add;
  };

  // Inserts `o` into the subtree rooted at `node_index`, whose routing
  // pivot is `node_pivot` (kInvalidObject at the root, which has none);
  // returns true and fills `split` when the node overflowed.
  bool InsertRecursive(int32_t node_index, ObjectId node_pivot, ObjectId o,
                       const ResolveFn& resolve, SplitResult* split);

  SplitResult SplitNode(int32_t node_index, const ResolveFn& resolve);

  void CollectSubtree(int32_t node_index, std::vector<ObjectId>* out) const;

  std::vector<Node> nodes_;
  int32_t root_ = -1;
  uint32_t height_ = 1;
  uint32_t capacity_;
};

}  // namespace metricprox

#endif  // METRICPROX_INDEX_MTREE_H_
