#ifndef METRICPROX_INDEX_BKTREE_H_
#define METRICPROX_INDEX_BKTREE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "algo/knn_graph.h"
#include "bounds/pivots.h"
#include "core/types.h"

namespace metricprox {

/// Burkhard–Keller tree (1973) — the classical index for *discrete* metric
/// spaces (edit distance over strings being the canonical one; related
/// work §6.1). Each node keys its children by the integer distance to the
/// node's object; a range query of radius r recurses only into children
/// keyed within [d - r, d + r] by the triangle inequality.
///
/// Construction inserts objects one by one (one oracle call per level
/// descended); all calls go through the supplied ResolveFn for accounting.
/// Distances are expected to be non-negative integers (CHECKed).
class BkTree {
 public:
  /// Builds over objects 0..n-1 in id order.
  BkTree(ObjectId n, const ResolveFn& resolve);

  /// Exact range query (radius inclusive), ascending by (distance, id).
  /// The query object itself is excluded.
  std::vector<KnnNeighbor> Range(ObjectId query, double radius,
                                 const ResolveFn& resolve) const;

  /// Exact k nearest neighbors via best-first descent with a shrinking
  /// radius, ascending by (distance, id).
  std::vector<KnnNeighbor> Knn(ObjectId query, uint32_t k,
                               const ResolveFn& resolve) const;

  size_t num_nodes() const { return nodes_.size(); }
  /// Maximum node depth (root = 0); a proxy for insert/search cost.
  uint32_t depth() const { return depth_; }

 private:
  struct Node {
    ObjectId object;
    // child distance -> node index; ordered so range scans are contiguous.
    std::map<int64_t, int32_t> children;
  };

  void Insert(ObjectId object, const ResolveFn& resolve);

  std::vector<Node> nodes_;
  uint32_t depth_ = 0;
};

}  // namespace metricprox

#endif  // METRICPROX_INDEX_BKTREE_H_
