#include "index/vptree.h"

#include <algorithm>
#include <queue>

#include "core/logging.h"

namespace metricprox {

namespace {

// splitmix64 step for deterministic vantage selection without <random>.
uint64_t NextRandom(uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct HeapLess {
  bool operator()(const KnnNeighbor& a, const KnnNeighbor& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

}  // namespace

VpTree::VpTree(ObjectId n, const VpTreeOptions& options,
               const ResolveFn& resolve)
    : n_(n) {
  CHECK_GE(n, 2u);
  CHECK_GE(options.leaf_size, 1u);
  std::vector<ObjectId> members(n);
  for (ObjectId o = 0; o < n; ++o) members[o] = o;
  uint64_t rng_state = options.seed;
  root_ = Build(std::move(members), options, resolve, &rng_state);
}

int32_t VpTree::Build(std::vector<ObjectId> members,
                      const VpTreeOptions& options, const ResolveFn& resolve,
                      uint64_t* rng_state) {
  if (members.empty()) return -1;

  const int32_t index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  // Random vantage point, swapped to the front.
  const size_t pick = NextRandom(rng_state) % members.size();
  std::swap(members[0], members[pick]);
  const ObjectId vantage = members[0];
  nodes_[index].vantage = vantage;

  if (members.size() <= options.leaf_size) {
    nodes_[index].bucket.assign(members.begin() + 1, members.end());
    return index;
  }

  // Distances from the vantage to the rest; split at the median.
  std::vector<std::pair<double, ObjectId>> dists;
  dists.reserve(members.size() - 1);
  for (size_t m = 1; m < members.size(); ++m) {
    dists.emplace_back(resolve(vantage, members[m]), members[m]);
  }
  const size_t mid = dists.size() / 2;
  std::nth_element(dists.begin(), dists.begin() + mid, dists.end());
  const double mu = dists[mid].first;

  std::vector<ObjectId> inside;
  std::vector<ObjectId> outside;
  for (const auto& [d, o] : dists) {
    (d <= mu ? inside : outside).push_back(o);
  }
  // Degenerate split (all equidistant): fall back to a leaf so recursion
  // terminates.
  if (inside.empty() || outside.empty()) {
    nodes_[index].bucket.assign(members.begin() + 1, members.end());
    return index;
  }
  nodes_[index].mu = mu;
  nodes_[index].inside = Build(std::move(inside), options, resolve, rng_state);
  nodes_[index].outside =
      Build(std::move(outside), options, resolve, rng_state);
  return index;
}

template <typename Emit>
void VpTree::Visit(int32_t node, ObjectId query, const ResolveFn& resolve,
                   const double* tau, Emit&& emit) const {
  if (node < 0) return;
  const Node& nd = nodes_[static_cast<size_t>(node)];

  double d_vantage = 0.0;
  if (nd.vantage != query) {
    d_vantage = resolve(query, nd.vantage);
    emit(nd.vantage, d_vantage);
  }
  for (const ObjectId o : nd.bucket) {
    if (o != query) emit(o, resolve(query, o));
  }
  if (nd.inside < 0 && nd.outside < 0) return;

  // Triangle pruning: the inside ball can hold a tau-near object only if
  // d(q, vp) - tau <= mu; the outside shell only if d(q, vp) + tau >= mu.
  // Non-strict comparisons keep exact ties reachable.
  if (d_vantage <= nd.mu) {
    Visit(nd.inside, query, resolve, tau, emit);
    if (d_vantage + *tau >= nd.mu) {
      Visit(nd.outside, query, resolve, tau, emit);
    }
  } else {
    Visit(nd.outside, query, resolve, tau, emit);
    if (d_vantage - *tau <= nd.mu) {
      Visit(nd.inside, query, resolve, tau, emit);
    }
  }
}

std::vector<KnnNeighbor> VpTree::Knn(ObjectId query, uint32_t k,
                                     const ResolveFn& resolve) const {
  CHECK_GE(k, 1u);
  CHECK_LT(query, n_);
  CHECK_GT(n_, k);

  std::priority_queue<KnnNeighbor, std::vector<KnnNeighbor>, HeapLess> best;
  double tau = kInfDistance;
  Visit(root_, query, resolve, &tau, [&](ObjectId o, double d) {
    if (best.size() < k) {
      best.push(KnnNeighbor{o, d});
    } else if (d < best.top().distance ||
               (d == best.top().distance && o < best.top().id)) {
      best.pop();
      best.push(KnnNeighbor{o, d});
    }
    if (best.size() == k) tau = best.top().distance;
  });

  std::vector<KnnNeighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

std::vector<KnnNeighbor> VpTree::Range(ObjectId query, double radius,
                                       const ResolveFn& resolve) const {
  CHECK_GE(radius, 0.0);
  CHECK_LT(query, n_);
  std::vector<KnnNeighbor> hits;
  const double tau = radius;
  Visit(root_, query, resolve, &tau, [&](ObjectId o, double d) {
    if (d <= radius) hits.push_back(KnnNeighbor{o, d});
  });
  std::sort(hits.begin(), hits.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  return hits;
}

}  // namespace metricprox
